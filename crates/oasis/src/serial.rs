//! JSON serialization of the crate's state and report types.
//!
//! The vendored `serde` stub provides the derive *markers*; actual
//! persistence goes through the concrete [`serde::json`] layer
//! ([`ToJson`] / [`FromJson`]), which guarantees exact `f64` round-trips —
//! the property the checkpoint subsystem's bit-identical-resume contract
//! rests on.  This module implements those traits for:
//!
//! * the report types — [`Estimate`], [`Measures`], [`ConfusionCounts`],
//!   [`ConfidenceInterval`], [`OracleReference`] — so experiment results can
//!   be persisted and compared across runs;
//! * the configuration — [`OasisConfig`] / [`StratifierChoice`];
//! * the resumable sampler state — the method-tagged [`SamplerState`] enum
//!   and its per-method payloads ([`OasisState`], [`PassiveState`],
//!   [`ImportanceState`], [`StratifiedState`], [`EstimatorState`]).
//!
//! The tagged encoding is flat: every state serialises as one object whose
//! `"method"` field names the variant.  Documents *without* a `"method"`
//! field predate the tagged form and are read as OASIS states, so
//! checkpoints written before the redesign keep restoring.

use crate::confidence::ConfidenceInterval;
use crate::diagnostics::OracleReference;
use crate::estimator::Estimate;
use crate::measures::{ConfusionCounts, Measures};
use crate::samplers::{
    EstimatorState, ImportanceState, OasisConfig, OasisState, PassiveState, SamplerDiagnostics,
    SamplerMethod, SamplerState, ShardedState, StratifiedState, StratifierChoice, TrackerState,
};
use serde::json::{FromJson, Json, JsonError, JsonResult, ToJson};

fn field_f64(value: &Json, key: &str) -> JsonResult<f64> {
    value.require(key)?.as_f64()
}

impl ToJson for Estimate {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("f_measure", self.f_measure.to_json());
        obj.set("precision", self.precision.to_json());
        obj.set("recall", self.recall.to_json());
        obj.set("alpha", self.alpha.to_json());
        obj.set("iterations", self.iterations.to_json());
        obj
    }
}

impl FromJson for Estimate {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(Estimate {
            f_measure: field_f64(value, "f_measure")?,
            precision: field_f64(value, "precision")?,
            recall: field_f64(value, "recall")?,
            alpha: field_f64(value, "alpha")?,
            iterations: value.require("iterations")?.as_usize()?,
        })
    }
}

impl ToJson for Measures {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("precision", self.precision.to_json());
        obj.set("recall", self.recall.to_json());
        obj.set("f_measure", self.f_measure.to_json());
        obj.set("alpha", self.alpha.to_json());
        obj
    }
}

impl FromJson for Measures {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(Measures {
            precision: field_f64(value, "precision")?,
            recall: field_f64(value, "recall")?,
            f_measure: field_f64(value, "f_measure")?,
            alpha: field_f64(value, "alpha")?,
        })
    }
}

impl ToJson for ConfusionCounts {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("tp", self.tp.to_json());
        obj.set("fp", self.fp.to_json());
        obj.set("fn", self.fn_.to_json());
        obj.set("tn", self.tn.to_json());
        obj
    }
}

impl FromJson for ConfusionCounts {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(ConfusionCounts {
            tp: field_f64(value, "tp")?,
            fp: field_f64(value, "fp")?,
            fn_: field_f64(value, "fn")?,
            tn: field_f64(value, "tn")?,
        })
    }
}

impl ToJson for ConfidenceInterval {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("estimate", self.estimate.to_json());
        obj.set("lower", self.lower.to_json());
        obj.set("upper", self.upper.to_json());
        obj.set("standard_error", self.standard_error.to_json());
        obj.set("level", self.level.to_json());
        obj
    }
}

impl FromJson for ConfidenceInterval {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(ConfidenceInterval {
            estimate: field_f64(value, "estimate")?,
            lower: field_f64(value, "lower")?,
            upper: field_f64(value, "upper")?,
            standard_error: field_f64(value, "standard_error")?,
            level: field_f64(value, "level")?,
        })
    }
}

impl ToJson for OracleReference {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("true_pi", self.true_pi.to_json());
        obj.set("true_f_measure", self.true_f_measure.to_json());
        obj.set("optimal_v", self.optimal_v.to_json());
        obj.set("alpha", self.alpha.to_json());
        obj
    }
}

impl FromJson for OracleReference {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(OracleReference {
            true_pi: Vec::<f64>::from_json(value.require("true_pi")?)?,
            true_f_measure: field_f64(value, "true_f_measure")?,
            optimal_v: Vec::<f64>::from_json(value.require("optimal_v")?)?,
            alpha: field_f64(value, "alpha")?,
        })
    }
}

impl ToJson for StratifierChoice {
    fn to_json(&self) -> Json {
        Json::String(
            match self {
                StratifierChoice::Csf => "csf",
                StratifierChoice::EqualSize => "equal_size",
            }
            .to_string(),
        )
    }
}

impl FromJson for StratifierChoice {
    fn from_json(value: &Json) -> JsonResult<Self> {
        match value.as_str()? {
            "csf" => Ok(StratifierChoice::Csf),
            "equal_size" => Ok(StratifierChoice::EqualSize),
            other => Err(JsonError::new(format!("unknown stratifier {other:?}"))),
        }
    }
}

impl ToJson for OasisConfig {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("alpha", self.alpha.to_json());
        obj.set("epsilon", self.epsilon.to_json());
        obj.set("strata_count", self.strata_count.to_json());
        obj.set("prior_strength", self.prior_strength.to_json());
        obj.set("decay_prior", self.decay_prior.to_json());
        obj.set("score_threshold", self.score_threshold.to_json());
        obj.set("stratifier", self.stratifier.to_json());
        obj
    }
}

impl FromJson for OasisConfig {
    fn from_json(value: &Json) -> JsonResult<Self> {
        // Missing keys fall back to the paper defaults, so hand-written
        // protocol configs only need to name what they override — but
        // unrecognised keys are rejected, otherwise a typo ("strata" for
        // "strata_count") would silently run with defaults.
        const KNOWN_KEYS: [&str; 7] = [
            "alpha",
            "epsilon",
            "strata_count",
            "prior_strength",
            "decay_prior",
            "score_threshold",
            "stratifier",
        ];
        match value {
            Json::Object(map) => {
                for key in map.keys() {
                    if !KNOWN_KEYS.contains(&key.as_str()) {
                        return Err(JsonError::new(format!(
                            "unknown config key {key:?} (expected one of {KNOWN_KEYS:?})"
                        )));
                    }
                }
            }
            other => {
                return Err(JsonError::new(format!(
                    "config must be an object, got {other:?}"
                )));
            }
        }
        let defaults = OasisConfig::default();
        let get_or = |key: &str, fallback: f64| -> JsonResult<f64> {
            match value.get(key) {
                Some(v) => v.as_f64(),
                None => Ok(fallback),
            }
        };
        Ok(OasisConfig {
            alpha: get_or("alpha", defaults.alpha)?,
            epsilon: get_or("epsilon", defaults.epsilon)?,
            strata_count: match value.get("strata_count") {
                Some(v) => v.as_usize()?,
                None => defaults.strata_count,
            },
            prior_strength: match value.get("prior_strength") {
                Some(v) => Option::<f64>::from_json(v)?,
                None => defaults.prior_strength,
            },
            decay_prior: match value.get("decay_prior") {
                Some(v) => v.as_bool()?,
                None => defaults.decay_prior,
            },
            score_threshold: get_or("score_threshold", defaults.score_threshold)?,
            stratifier: match value.get("stratifier") {
                Some(v) => StratifierChoice::from_json(v)?,
                None => defaults.stratifier,
            },
        })
    }
}

impl ToJson for EstimatorState {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("alpha", self.alpha.to_json());
        obj.set("weighted_tp", self.weighted_tp.to_json());
        obj.set("weighted_predicted", self.weighted_predicted.to_json());
        obj.set("weighted_actual", self.weighted_actual.to_json());
        obj.set("total_weight", self.total_weight.to_json());
        // Explicit null when the Σw² history is unknown (a snapshot restored
        // from a pre-diagnostics document), mirroring the tracker convention:
        // post-PR7 documents always carry the key.
        obj.set("weight_sq", self.weight_sq.to_json());
        obj.set("iterations", self.iterations.to_json());
        obj
    }
}

impl FromJson for EstimatorState {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(EstimatorState {
            alpha: field_f64(value, "alpha")?,
            weighted_tp: field_f64(value, "weighted_tp")?,
            weighted_predicted: field_f64(value, "weighted_predicted")?,
            weighted_actual: field_f64(value, "weighted_actual")?,
            total_weight: field_f64(value, "total_weight")?,
            // Missing key (pre-PR7 document) and explicit null both mean "no
            // Σw² history": the estimator restores exactly but reports no ESS.
            weight_sq: match value.get("weight_sq") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_f64()?),
            },
            iterations: value.require("iterations")?.as_usize()?,
        })
    }
}

impl ToJson for TrackerState {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("alpha", self.alpha.to_json());
        obj.set("count", self.count.to_json());
        obj.set("sum_n", self.sum_n.to_json());
        obj.set("sum_d", self.sum_d.to_json());
        obj.set("sum_nn", self.sum_nn.to_json());
        obj.set("sum_dd", self.sum_dd.to_json());
        obj.set("sum_nd", self.sum_nd.to_json());
        obj
    }
}

impl FromJson for TrackerState {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(TrackerState {
            alpha: field_f64(value, "alpha")?,
            count: field_f64(value, "count")?,
            sum_n: field_f64(value, "sum_n")?,
            sum_d: field_f64(value, "sum_d")?,
            sum_nn: field_f64(value, "sum_nn")?,
            sum_dd: field_f64(value, "sum_dd")?,
            sum_nd: field_f64(value, "sum_nd")?,
        })
    }
}

/// Serialize an optional tracker as an *explicit* `"tracker": null` when
/// absent, so post-PR6 documents always carry the key and the absence is a
/// deliberate statement rather than an omission.
fn tracker_to_json(tracker: &Option<TrackerState>) -> Json {
    match tracker {
        Some(t) => t.to_json(),
        None => Json::Null,
    }
}

/// Parse the optional tracker: a missing key (pre-PR6 document) and an
/// explicit `null` both mean "no variance history was captured".
fn tracker_from_json(value: &Json) -> JsonResult<Option<TrackerState>> {
    match value.get("tracker") {
        None | Some(Json::Null) => Ok(None),
        Some(t) => Ok(Some(TrackerState::from_json(t)?)),
    }
}

impl ToJson for SamplerMethod {
    fn to_json(&self) -> Json {
        Json::String(self.as_str().to_string())
    }
}

impl FromJson for SamplerMethod {
    fn from_json(value: &Json) -> JsonResult<Self> {
        SamplerMethod::parse(value.as_str()?).map_err(|e| JsonError::new(e.to_string()))
    }
}

fn allocations_to_json(allocations: &[Vec<usize>]) -> Json {
    Json::Array(allocations.iter().map(ToJson::to_json).collect())
}

fn allocations_from_json(value: &Json) -> JsonResult<Vec<Vec<usize>>> {
    value
        .require("allocations")?
        .as_array()?
        .iter()
        .map(Vec::<usize>::from_json)
        .collect()
}

impl ToJson for OasisState {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("config", self.config.to_json());
        obj.set("allocations", allocations_to_json(&self.allocations));
        obj.set("prior_gamma0", self.prior_gamma0.to_json());
        obj.set("prior_gamma1", self.prior_gamma1.to_json());
        obj.set("observed_matches", self.observed_matches.to_json());
        obj.set("observed_non_matches", self.observed_non_matches.to_json());
        obj.set("decay_prior", self.decay_prior.to_json());
        obj.set("estimator", self.estimator.to_json());
        obj.set("initial_f_guess", self.initial_f_guess.to_json());
        obj.set("current_proposal", self.current_proposal.to_json());
        obj.set("cdf_rebuilds", self.cdf_rebuilds.to_json());
        obj.set("tracker", tracker_to_json(&self.tracker));
        obj
    }
}

impl FromJson for OasisState {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(OasisState {
            config: OasisConfig::from_json(value.require("config")?)?,
            allocations: allocations_from_json(value)?,
            prior_gamma0: Vec::<f64>::from_json(value.require("prior_gamma0")?)?,
            prior_gamma1: Vec::<f64>::from_json(value.require("prior_gamma1")?)?,
            observed_matches: Vec::<f64>::from_json(value.require("observed_matches")?)?,
            observed_non_matches: Vec::<f64>::from_json(value.require("observed_non_matches")?)?,
            decay_prior: value.require("decay_prior")?.as_bool()?,
            estimator: EstimatorState::from_json(value.require("estimator")?)?,
            initial_f_guess: field_f64(value, "initial_f_guess")?,
            current_proposal: Vec::<f64>::from_json(value.require("current_proposal")?)?,
            // Pre-PR7 documents carry no rebuild counter; start from zero.
            cdf_rebuilds: match value.get("cdf_rebuilds") {
                None => 0,
                Some(v) => v.as_u64()?,
            },
            tracker: tracker_from_json(value)?,
        })
    }
}

impl ToJson for PassiveState {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("estimator", self.estimator.to_json());
        obj.set("tracker", tracker_to_json(&self.tracker));
        obj
    }
}

impl FromJson for PassiveState {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(PassiveState {
            estimator: EstimatorState::from_json(value.require("estimator")?)?,
            tracker: tracker_from_json(value)?,
        })
    }
}

impl ToJson for ImportanceState {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("score_threshold", self.score_threshold.to_json());
        obj.set("estimator", self.estimator.to_json());
        obj.set("tracker", tracker_to_json(&self.tracker));
        obj
    }
}

impl FromJson for ImportanceState {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(ImportanceState {
            score_threshold: field_f64(value, "score_threshold")?,
            estimator: EstimatorState::from_json(value.require("estimator")?)?,
            tracker: tracker_from_json(value)?,
        })
    }
}

impl ToJson for StratifiedState {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("alpha", self.alpha.to_json());
        obj.set("allocations", allocations_to_json(&self.allocations));
        obj.set("samples", self.samples.to_json());
        obj.set("true_positives", self.true_positives.to_json());
        obj.set("actual_positives", self.actual_positives.to_json());
        obj.set("iterations", self.iterations.to_json());
        obj.set("tracker", tracker_to_json(&self.tracker));
        obj
    }
}

impl FromJson for StratifiedState {
    fn from_json(value: &Json) -> JsonResult<Self> {
        Ok(StratifiedState {
            alpha: field_f64(value, "alpha")?,
            allocations: allocations_from_json(value)?,
            samples: Vec::<f64>::from_json(value.require("samples")?)?,
            true_positives: Vec::<f64>::from_json(value.require("true_positives")?)?,
            actual_positives: Vec::<f64>::from_json(value.require("actual_positives")?)?,
            iterations: value.require("iterations")?.as_usize()?,
            tracker: tracker_from_json(value)?,
        })
    }
}

impl ToJson for ShardedState {
    /// Encoding of the sharded topology: the outer `"method"` tag is the
    /// literal `"sharded"` (written by [`SamplerState::to_json`]), the inner
    /// per-shard method rides in `"inner_method"`, and each entry of
    /// `"shards"` is a complete tagged [`SamplerState`] document.  Per-shard
    /// RNG streams serialize as 4-word arrays, the same words the engine
    /// checkpoints for the session RNG.
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("inner_method", self.method.to_json());
        obj.set(
            "shard_rngs",
            Json::Array(
                self.shard_rngs
                    .iter()
                    .map(|words| words.to_vec().to_json())
                    .collect(),
            ),
        );
        obj.set(
            "shards",
            Json::Array(self.shards.iter().map(ToJson::to_json).collect()),
        );
        obj.set("tracker", tracker_to_json(&self.tracker));
        obj
    }
}

impl FromJson for ShardedState {
    fn from_json(value: &Json) -> JsonResult<Self> {
        let raw_rngs = Vec::<Vec<u64>>::from_json(value.require("shard_rngs")?)?;
        let mut shard_rngs = Vec::with_capacity(raw_rngs.len());
        for words in raw_rngs {
            let words: [u64; 4] = words
                .try_into()
                .map_err(|_| JsonError::new("shard RNG state must hold exactly 4 words"))?;
            shard_rngs.push(words);
        }
        Ok(ShardedState {
            method: SamplerMethod::from_json(value.require("inner_method")?)?,
            shard_rngs,
            shards: Vec::<SamplerState>::from_json(value.require("shards")?)?,
            tracker: tracker_from_json(value)?,
        })
    }
}

impl ToJson for SamplerDiagnostics {
    /// Wire encoding of the health report.  Optional statistics (undefined
    /// before the first label, or unknown for snapshots restored from
    /// pre-diagnostics documents) serialize as explicit `null`s so consumers
    /// can tell "not yet defined" apart from a dropped field.
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.set("method", self.method.to_json());
        obj.set("iterations", self.iterations.to_json());
        obj.set(
            "effective_sample_size",
            self.effective_sample_size.to_json(),
        );
        obj.set(
            "normalized_weight_variance",
            self.normalized_weight_variance.to_json(),
        );
        obj.set("stratum_labels", self.stratum_labels.to_json());
        obj.set("instrumental", self.instrumental.to_json());
        obj.set("cdf_rebuilds", self.cdf_rebuilds.to_json());
        obj
    }
}

impl FromJson for SamplerDiagnostics {
    fn from_json(value: &Json) -> JsonResult<Self> {
        let optional_f64 = |key: &str| -> JsonResult<Option<f64>> {
            match value.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(v) => Ok(Some(v.as_f64()?)),
            }
        };
        Ok(SamplerDiagnostics {
            method: SamplerMethod::from_json(value.require("method")?)?,
            iterations: value.require("iterations")?.as_usize()?,
            effective_sample_size: optional_f64("effective_sample_size")?,
            normalized_weight_variance: optional_f64("normalized_weight_variance")?,
            stratum_labels: Vec::<f64>::from_json(value.require("stratum_labels")?)?,
            instrumental: Vec::<f64>::from_json(value.require("instrumental")?)?,
            cdf_rebuilds: value.require("cdf_rebuilds")?.as_u64()?,
        })
    }
}

impl ToJson for SamplerState {
    /// Flat encoding: the variant payload's fields plus a `"method"` tag.
    /// The sharded topology writes the literal tag `"sharded"` — its
    /// [`SamplerState::method`] reports the *inner* method, which rides in
    /// the payload's `"inner_method"` field instead.
    fn to_json(&self) -> Json {
        let mut obj = match self {
            SamplerState::Oasis(s) => s.to_json(),
            SamplerState::Passive(s) => s.to_json(),
            SamplerState::Importance(s) => s.to_json(),
            SamplerState::Stratified(s) => s.to_json(),
            SamplerState::Sharded(s) => {
                let mut obj = s.to_json();
                obj.set("method", Json::String("sharded".to_string()));
                return obj;
            }
        };
        obj.set("method", self.method().to_json());
        obj
    }
}

impl FromJson for SamplerState {
    /// A missing `"method"` field means a pre-redesign document, which could
    /// only describe an OASIS sampler.  The `"sharded"` tag is checked
    /// before the method names — it marks a topology, not a method.
    fn from_json(value: &Json) -> JsonResult<Self> {
        let method = match value.get("method") {
            Some(tag) => {
                if tag.as_str()? == "sharded" {
                    return Ok(SamplerState::Sharded(ShardedState::from_json(value)?));
                }
                SamplerMethod::from_json(tag)?
            }
            None => SamplerMethod::Oasis,
        };
        Ok(match method {
            SamplerMethod::Oasis => SamplerState::Oasis(OasisState::from_json(value)?),
            SamplerMethod::Passive => SamplerState::Passive(PassiveState::from_json(value)?),
            SamplerMethod::Importance => {
                SamplerState::Importance(ImportanceState::from_json(value)?)
            }
            SamplerMethod::Stratified => {
                SamplerState::Stratified(StratifiedState::from_json(value)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::samplers::{AnySampler, InteractiveSampler, OasisSampler, Sampler, TrackedSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_round_trips_including_nan() {
        let est = Estimate {
            f_measure: f64::NAN,
            precision: 0.25,
            recall: 1.0 / 3.0,
            alpha: 0.5,
            iterations: 17,
        };
        let text = est.to_json().render();
        let back = Estimate::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(back.f_measure.is_nan());
        assert_eq!(back.precision.to_bits(), est.precision.to_bits());
        assert_eq!(back.recall.to_bits(), est.recall.to_bits());
        assert_eq!(back.iterations, 17);
    }

    #[test]
    fn measures_and_confusion_round_trip() {
        let m = Measures {
            precision: 0.75,
            recall: 6.0 / 7.0,
            f_measure: 0.8,
            alpha: 0.5,
        };
        let back = Measures::from_json(&Json::parse(&m.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, m);
        let c = ConfusionCounts {
            tp: 1.5,
            fp: 0.25,
            fn_: 3.0,
            tn: 1e6,
        };
        let back =
            ConfusionCounts::from_json(&Json::parse(&c.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn confidence_interval_round_trips() {
        let ci = ConfidenceInterval {
            estimate: 0.5,
            lower: 0.4,
            upper: 0.6,
            standard_error: 0.051,
            level: 0.95,
        };
        let back =
            ConfidenceInterval::from_json(&Json::parse(&ci.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, ci);
    }

    #[test]
    fn config_round_trips_and_accepts_partial_objects() {
        let config = OasisConfig::default()
            .with_alpha(0.7)
            .with_prior_strength(12.0)
            .with_stratifier(StratifierChoice::EqualSize);
        let back =
            OasisConfig::from_json(&Json::parse(&config.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, config);

        // Partial configs fall back to paper defaults.
        let partial = OasisConfig::from_json(&Json::parse(r#"{"alpha":0.9}"#).unwrap()).unwrap();
        assert_eq!(partial.alpha, 0.9);
        assert_eq!(partial.strata_count, OasisConfig::default().strata_count);
        assert_eq!(partial.stratifier, StratifierChoice::Csf);
        assert!(
            OasisConfig::from_json(&Json::parse(r#"{"stratifier":"bogus"}"#).unwrap()).is_err()
        );
        // Typo'd keys must not silently fall back to defaults.
        assert!(OasisConfig::from_json(&Json::parse(r#"{"strata":40}"#).unwrap()).is_err());
        assert!(OasisConfig::from_json(&Json::parse("[]").unwrap()).is_err());
    }

    #[test]
    fn diagnostics_reference_round_trips() {
        let reference = OracleReference {
            true_pi: vec![0.9, 0.1, 0.0],
            true_f_measure: 6.0 / 7.0,
            optimal_v: vec![0.5, 0.3, 0.2],
            alpha: 0.5,
        };
        let back = OracleReference::from_json(&Json::parse(&reference.to_json().render()).unwrap())
            .unwrap();
        assert_eq!(back, reference);
    }

    #[test]
    fn sampler_state_json_round_trip_is_bit_identical() {
        let (pool, truth) = crate::test_fixtures::pool_and_truth(800, 10, 0.1);
        let mut rng = StdRng::seed_from_u64(10);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(10)).unwrap();
        for _ in 0..150 {
            sampler.step(&pool, &mut oracle, &mut rng).unwrap();
        }
        let state = sampler.state();
        let text = state.to_json().render();
        assert!(text.contains(r#""method":"oasis""#), "tagged encoding");
        let parsed = SamplerState::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, state, "JSON round trip must be exact");
        let restored = OasisSampler::from_state(&pool, parsed).unwrap();
        assert_eq!(
            restored.estimate().f_measure.to_bits(),
            sampler.estimate().f_measure.to_bits()
        );
    }

    #[test]
    fn every_method_tag_round_trips_through_json() {
        let (pool, truth) = crate::test_fixtures::pool_and_truth(500, 21, 0.15);
        for method in SamplerMethod::ALL {
            let config = OasisConfig::default().with_strata_count(5);
            let mut sampler = AnySampler::build(method, &pool, &config).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            let mut oracle = GroundTruthOracle::new(truth.clone());
            for _ in 0..60 {
                sampler.step(&pool, &mut oracle, &mut rng).unwrap();
            }
            let state = sampler.state();
            let text = state.to_json().render();
            assert!(
                text.contains(&format!(r#""method":"{}""#, method.as_str())),
                "{method}: {text}"
            );
            let parsed = SamplerState::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, state, "{method}: JSON round trip must be exact");
            let restored = AnySampler::from_state(&pool, parsed).unwrap();
            assert_eq!(
                restored.estimate().f_measure.to_bits(),
                sampler.estimate().f_measure.to_bits(),
                "{method}"
            );
        }
    }

    #[test]
    fn tracker_state_survives_json_and_pre_tracker_documents_restore_incomplete() {
        let (pool, truth) = crate::test_fixtures::pool_and_truth(500, 27, 0.15);
        for method in SamplerMethod::ALL {
            let config = OasisConfig::default().with_strata_count(5);
            let inner = AnySampler::build(method, &pool, &config).unwrap();
            let mut tracked = TrackedSampler::new(inner, config.alpha);
            let mut rng = StdRng::seed_from_u64(9);
            let mut oracle = GroundTruthOracle::new(truth.clone());
            for _ in 0..50 {
                tracked.step(&pool, &mut oracle, &mut rng).unwrap();
            }

            // Current documents carry the tracker sums and restore bit-exactly.
            let text = tracked.state().to_json().render();
            assert!(text.contains(r#""tracker":{"#), "{method}: {text}");
            let parsed = SamplerState::from_json(&Json::parse(&text).unwrap()).unwrap();
            let restored = TrackedSampler::<AnySampler>::from_state(&pool, parsed).unwrap();
            assert!(restored.tracker_complete(), "{method}");
            let before = tracked.confidence_interval(0.95).unwrap();
            let after = restored.confidence_interval(0.95).unwrap();
            assert_eq!(before.lower.to_bits(), after.lower.to_bits(), "{method}");
            assert_eq!(before.upper.to_bits(), after.upper.to_bits(), "{method}");

            // Pre-tracker documents (no "tracker" key) still restore, but the
            // tracker is flagged incomplete and the interval is suppressed
            // rather than silently reported from zeroed sums.
            let mut legacy = tracked.state().to_json();
            legacy.remove("tracker");
            let parsed = SamplerState::from_json(&legacy).unwrap();
            assert!(parsed.tracker().is_none(), "{method}");
            let restored = TrackedSampler::<AnySampler>::from_state(&pool, parsed).unwrap();
            assert!(!restored.tracker_complete(), "{method}");
            assert!(restored.confidence_interval(0.95).is_none(), "{method}");
            assert_eq!(
                restored.estimate().f_measure.to_bits(),
                tracked.estimate().f_measure.to_bits(),
                "{method}: the estimate itself is unaffected"
            );

            // An incomplete tracker is never re-serialized as data: the
            // document writes an explicit null so the flag survives further
            // checkpoint cycles.
            let reserialized = restored.state().to_json().render();
            assert!(reserialized.contains(r#""tracker":null"#), "{method}");
        }
    }

    #[test]
    fn sharded_state_round_trips_with_its_topology_tag() {
        let (pool, truth) = crate::test_fixtures::pool_and_truth(600, 31, 0.15);
        for method in SamplerMethod::ALL {
            let config = OasisConfig::default().with_strata_count(5);
            let inner = AnySampler::build_sharded(method, &pool, &config, 3, 77).unwrap();
            let mut tracked = TrackedSampler::new(inner, config.alpha);
            let mut rng = StdRng::seed_from_u64(32);
            let mut oracle = GroundTruthOracle::new(truth.clone());
            for _ in 0..90 {
                tracked.step(&pool, &mut oracle, &mut rng).unwrap();
            }
            let state = tracked.state();
            let text = state.to_json().render();
            assert!(text.contains(r#""method":"sharded""#), "{method}: {text}");
            assert!(
                text.contains(&format!(r#""inner_method":"{}""#, method.as_str())),
                "{method}: {text}"
            );
            let parsed = SamplerState::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(parsed, state, "{method}: JSON round trip must be exact");
            let restored = TrackedSampler::<AnySampler>::from_state(&pool, parsed).unwrap();
            assert_eq!(restored.inner().shard_count(), 3, "{method}");
            assert_eq!(
                restored.estimate().f_measure.to_bits(),
                tracked.estimate().f_measure.to_bits(),
                "{method}"
            );
            let before = tracked.confidence_interval(0.95).unwrap();
            let after = restored.confidence_interval(0.95).unwrap();
            assert_eq!(before.lower.to_bits(), after.lower.to_bits(), "{method}");
            assert_eq!(before.upper.to_bits(), after.upper.to_bits(), "{method}");

            // Corrupt RNG word counts are rejected at the JSON layer.
            let mut doc = state.to_json();
            doc.set("shard_rngs", Json::parse("[[1,2,3]]").unwrap());
            assert!(SamplerState::from_json(&doc).is_err(), "{method}");
        }
    }

    #[test]
    fn untagged_sampler_state_documents_parse_as_oasis() {
        // Pre-redesign checkpoints carry no "method" field; they can only be
        // OASIS states and must keep restoring.
        let (pool, truth) = crate::test_fixtures::pool_and_truth(400, 22, 0.15);
        let mut rng = StdRng::seed_from_u64(3);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(5)).unwrap();
        for _ in 0..40 {
            sampler.step(&pool, &mut oracle, &mut rng).unwrap();
        }
        let mut untagged = sampler.state().to_json();
        untagged.remove("method");
        let text = untagged.render();
        assert!(!text.contains(r#""method""#));
        let parsed = SamplerState::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.method(), SamplerMethod::Oasis);
        assert_eq!(parsed, sampler.state());
    }

    #[test]
    fn unknown_method_tags_are_rejected() {
        let doc = r#"{"method":"bogus","estimator":{}}"#;
        let err = SamplerState::from_json(&Json::parse(doc).unwrap()).unwrap_err();
        assert!(err.to_string().contains("bogus"), "{err}");
    }
}
