//! Regenerate Table 3 (CPU times on the cora pool).
//!
//! Usage: `cargo run --release -p experiments --bin table3 -- --scale=0.3 --iterations=10000 --runs=3`

use experiments::table3::{run, Table3Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = Table3Config {
        scale: experiments::parse_arg(&args, "scale", 0.3f64),
        iterations: experiments::parse_arg(&args, "iterations", 10_000usize),
        runs: experiments::parse_arg(&args, "runs", 3usize),
        seed: experiments::parse_arg(&args, "seed", 2017u64),
    };
    println!("{}", run(&config).render());
}
