//! Sharded pools: one logical evaluation spread across K sub-pools.
//!
//! A [`ShardedPool`] partitions a [`ScoredPool`] into K contiguous shards; a
//! [`ShardedSampler`] runs one independent inner sampler (any
//! [`SamplerMethod`]) per shard and exposes the whole ensemble as a single
//! [`InteractiveSampler`].  Nothing upstream changes: sessions, checkpoints
//! and the wire protocol drive a sharded sampler exactly like a flat one.
//!
//! # Exact merge
//!
//! The merged estimate is not an average of per-shard estimates — it is the
//! *exact* global estimate, computed from summed sufficient statistics:
//!
//! * **AIS methods** (`oasis`, `passive`, `importance`): a proposal drawn
//!   from shard `s` carries the *global* importance weight
//!   `w = w_local · ω_s · M/m_s`, where `ω_s = N_s/N` is the shard's share
//!   of the pool, `m_s` its current selection mass and `M = Σ m_s`.  Since
//!   the shard was selected with probability `q_s = m_s/M` and the inner
//!   sampler drew the item with its local probability `p_s(j)`, the global
//!   draw probability is `q_s·p_s(j)` and `w = (1/N)/(q_s·p_s(j))` up to the
//!   target's constant — precisely the flat AIS weight for the combined
//!   instrumental distribution.  Inner estimators accumulate these global
//!   weights, so summing their four weighted sums (Eqn. 3) over shards gives
//!   the same accumulator a single global sampler would hold, and the merged
//!   estimate falls out of the ordinary [`AisEstimator`] arithmetic.
//! * **Stratified**: the transferred-mass sums of
//!   [`StratifiedSampler::mass_sums`] are in absolute item counts, so sums
//!   over disjoint shards add exactly; the shared
//!   [`finish_stratified_estimate`] turns the merged sums into the estimate.
//!
//! With K = 1 every merge above degenerates to the flat computation
//! bit-for-bit: `ω_1 = 1`, `M/m_1 = 1`, the weight multiplication is by
//! exactly `1.0`, and the merged sums start from `+0.0` — so a one-shard
//! sharded session is bit-identical to an unsharded one (estimate *and*
//! confidence interval), which is pinned by tests.
//!
//! # Shard selection
//!
//! Shard masses `m_s = ω_s · proposal_mass_s` live in a [`FenwickTree`]:
//! applying a label re-weights only the routed shard (O(log K)), and a draw
//! is one uniform variate plus an O(log K) descent.  The flat alternative —
//! rebuilding a K-entry CDF per label — is O(K); at a fixed shard size the
//! Fenwick path makes per-label proposal cost logarithmic in the pool size
//! instead of linear.
//!
//! # Randomness
//!
//! The caller's RNG is consumed *only* for shard selection; each shard owns
//! a private `StdRng` (seeded `seed + s`) for its inner draws.  This keeps
//! shard streams independent of how selection interleaves them — and makes
//! the K = 1 parity above hold: shard 0's stream is exactly the stream an
//! unsharded session would have used.  The per-shard generators are part of
//! the serialized [`ShardedState`], so exact-resume covers them too.

use super::any::AnySampler;
use super::state::{SamplerMethod, SamplerState, ShardedState};
use super::stratified::finish_stratified_estimate;
use super::{FenwickTree, InteractiveSampler, OasisConfig, Proposal, Sampler, SamplerDiagnostics};
use crate::error::{Error, Result};
use crate::estimator::{AisEstimator, Estimate};
use crate::pool::ScoredPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A contiguous partition of a [`ScoredPool`] into K shards.
///
/// Shard `s` holds the items `[s·N/K, (s+1)·N/K)` of the source pool, so the
/// partition is a pure function of `(N, K)` — checkpoints never store it,
/// they recompute it.  Every shard is non-empty (K ≤ N is enforced).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedPool {
    /// The per-shard sub-pools, in pool order.
    shards: Vec<ScoredPool>,
    /// Start index of each shard in the source pool.
    item_offsets: Vec<usize>,
    /// Shard share of the pool, `ω_s = N_s/N`.
    weights: Vec<f64>,
    /// Total item count of the source pool.
    total_len: usize,
}

impl ShardedPool {
    /// Partition `pool` into `shard_count` contiguous shards.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `shard_count` is zero or exceeds the
    /// pool size (every shard must hold at least one item).
    pub fn partition(pool: &ScoredPool, shard_count: usize) -> Result<Self> {
        if shard_count == 0 {
            return Err(Error::InvalidParameter {
                name: "shards",
                message: "shard count must be at least 1".to_string(),
            });
        }
        let n = pool.len();
        if shard_count > n {
            return Err(Error::InvalidParameter {
                name: "shards",
                message: format!("shard count {shard_count} exceeds pool size {n}"),
            });
        }
        let mut shards = Vec::with_capacity(shard_count);
        let mut item_offsets = Vec::with_capacity(shard_count);
        let mut weights = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            let start = s * n / shard_count;
            let end = (s + 1) * n / shard_count;
            item_offsets.push(start);
            weights.push((end - start) as f64 / n as f64);
            shards.push(ScoredPool::new(
                pool.scores()[start..end].to_vec(),
                pool.predictions()[start..end].to_vec(),
            )?);
        }
        Ok(ShardedPool {
            shards,
            item_offsets,
            weights,
            total_len: n,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total item count of the source pool.
    pub fn len(&self) -> usize {
        self.total_len
    }

    /// Whether the source pool was empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.total_len == 0
    }

    /// The sub-pool of shard `s`.
    pub fn shard(&self, s: usize) -> &ScoredPool {
        &self.shards[s]
    }

    /// Start index of shard `s` in the source pool.
    pub fn item_offset(&self, s: usize) -> usize {
        self.item_offsets[s]
    }

    /// Shard share of the pool, `ω_s = N_s/N` (exactly `1.0` for K = 1).
    pub fn shard_weight(&self, s: usize) -> f64 {
        self.weights[s]
    }

    /// The shard containing global item index `item`.
    pub fn shard_of_item(&self, item: usize) -> usize {
        debug_assert!(item < self.total_len);
        // First offset strictly beyond the item, minus one.
        self.item_offsets.partition_point(|&start| start <= item) - 1
    }
}

/// K independent inner samplers over a [`ShardedPool`], presented as one
/// [`InteractiveSampler`] whose estimate is the exact merged global estimate
/// (see the [module docs](self) for the weight algebra).
#[derive(Debug, Clone)]
pub struct ShardedSampler {
    /// The method every shard runs.
    method: SamplerMethod,
    /// F-measure weight α (shared by all shards).
    alpha: f64,
    pool: ShardedPool,
    inners: Vec<AnySampler>,
    /// Private per-shard RNG streams (see module docs on randomness).
    shard_rngs: Vec<StdRng>,
    /// Shard selection masses `m_s = ω_s · proposal_mass_s`.
    fenwick: FenwickTree,
    /// Start of each shard's stratum range in the global stratum numbering.
    stratum_offsets: Vec<usize>,
    /// Total strata across shards.
    strata_total: usize,
}

/// The guarded shard mass `ω_s · proposal_mass_s`: any non-positive or
/// non-finite product falls back to the neutral `ω_s`, so selection masses
/// are always strictly positive and the tree total stays finite.  Must stay
/// a pure function of `(ω_s, proposal_mass_s)` — restore recomputes it.
fn guarded_mass(shard_weight: f64, proposal_mass: f64) -> f64 {
    let mass = shard_weight * proposal_mass;
    if mass.is_finite() && mass > 0.0 {
        mass
    } else {
        shard_weight
    }
}

impl ShardedSampler {
    /// Build a sharded sampler: partition `pool` into `shard_count` shards
    /// and construct one fresh `method` sampler per shard from the shared
    /// `config`.  Shard `s` draws from a private RNG seeded
    /// `seed.wrapping_add(s)`.
    ///
    /// # Errors
    /// Invalid shard count (zero, or more shards than items), invalid
    /// config, or any inner constructor failure (e.g. a shard too small for
    /// the configured stratifier).
    pub fn new(
        method: SamplerMethod,
        pool: &ScoredPool,
        config: &OasisConfig,
        shard_count: usize,
        seed: u64,
    ) -> Result<Self> {
        let sharded = ShardedPool::partition(pool, shard_count)?;
        let mut inners = Vec::with_capacity(shard_count);
        let mut shard_rngs = Vec::with_capacity(shard_count);
        for s in 0..shard_count {
            inners.push(AnySampler::build(method, sharded.shard(s), config)?);
            shard_rngs.push(StdRng::seed_from_u64(seed.wrapping_add(s as u64)));
        }
        Self::assemble(method, config.alpha, sharded, inners, shard_rngs)
    }

    /// Wire up the derived structures (stratum offsets, selection tree)
    /// around constructed parts; shared by [`ShardedSampler::new`] and the
    /// restore path.
    fn assemble(
        method: SamplerMethod,
        alpha: f64,
        pool: ShardedPool,
        inners: Vec<AnySampler>,
        shard_rngs: Vec<StdRng>,
    ) -> Result<Self> {
        let mut stratum_offsets = Vec::with_capacity(inners.len());
        let mut strata_total = 0usize;
        let mut masses = Vec::with_capacity(inners.len());
        for (s, inner) in inners.iter().enumerate() {
            stratum_offsets.push(strata_total);
            strata_total += inner.strata_len();
            masses.push(guarded_mass(pool.shard_weight(s), inner.proposal_mass()));
        }
        let fenwick = FenwickTree::from_weights(&masses);
        Ok(ShardedSampler {
            method,
            alpha,
            pool,
            inners,
            shard_rngs,
            fenwick,
            stratum_offsets,
            strata_total,
        })
    }

    /// Rebuild from a captured [`ShardedState`] against the source pool.
    fn rebuild(pool: &ScoredPool, state: ShardedState) -> Result<Self> {
        let k = state.shards.len();
        if k == 0 {
            return Err(Error::InvalidParameter {
                name: "state",
                message: "sharded state holds no shards".to_string(),
            });
        }
        if state.shard_rngs.len() != k {
            return Err(Error::InvalidParameter {
                name: "state",
                message: format!(
                    "sharded state holds {k} shards but {} RNG streams",
                    state.shard_rngs.len()
                ),
            });
        }
        let sharded = ShardedPool::partition(pool, k)?;
        let alpha = state.shards.first().map_or(f64::NAN, SamplerState::alpha);
        let mut inners = Vec::with_capacity(k);
        for (s, inner_state) in state.shards.into_iter().enumerate() {
            if matches!(inner_state, SamplerState::Sharded(_)) {
                return Err(Error::InvalidParameter {
                    name: "state",
                    message: format!("shard {s} holds a nested sharded state"),
                });
            }
            if inner_state.method() != state.method {
                return Err(Error::InvalidParameter {
                    name: "state",
                    message: format!(
                        "shard {s} is tagged {:?} but the sharded state says {:?}",
                        inner_state.method().as_str(),
                        state.method.as_str()
                    ),
                });
            }
            inners.push(AnySampler::from_state(sharded.shard(s), inner_state)?);
        }
        let shard_rngs = state
            .shard_rngs
            .into_iter()
            .map(StdRng::from_state_words)
            .collect();
        Self::assemble(state.method, alpha, sharded, inners, shard_rngs)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inners.len()
    }

    /// The partitioned pool.
    pub fn pool(&self) -> &ShardedPool {
        &self.pool
    }

    /// The inner sampler of shard `s`.
    pub fn shard_sampler(&self, s: usize) -> &AnySampler {
        &self.inners[s]
    }

    /// Current shard selection probabilities `q_s = m_s/M` (uniform when the
    /// tree total is degenerate, which the mass guard makes unreachable in
    /// practice).
    pub fn shard_selection(&self) -> Vec<f64> {
        let total = self.fenwick.total();
        if total > 0.0 && total.is_finite() {
            (0..self.inners.len())
                .map(|s| self.fenwick.weight(s) / total)
                .collect()
        } else {
            vec![1.0 / self.inners.len() as f64; self.inners.len()]
        }
    }

    /// The factor turning shard `s`'s local importance weight into the
    /// global one: `ω_s · M/m_s` (exactly `1.0` for K = 1).
    fn weight_scale(&self, s: usize) -> f64 {
        let mass = self.fenwick.weight(s);
        let total = self.fenwick.total();
        if mass > 0.0 && total > 0.0 && total.is_finite() {
            self.pool.shard_weight(s) * (total / mass)
        } else {
            // Degenerate tree ⇒ the draw fell back to uniform, q_s = 1/K.
            self.pool.shard_weight(s) * self.inners.len() as f64
        }
    }

    /// The merged global AIS accumulator: per-shard weighted sums (already
    /// on the global weight scale) summed in shard order.
    fn merged_estimator(&self) -> Result<AisEstimator> {
        let mut weighted_tp = 0.0;
        let mut weighted_predicted = 0.0;
        let mut weighted_actual = 0.0;
        let mut total_weight = 0.0;
        let mut weight_sq = Some(0.0);
        let mut iterations = 0usize;
        for inner in &self.inners {
            let estimator = match inner {
                AnySampler::Passive(s) => s.estimator(),
                AnySampler::Importance(s) => s.estimator(),
                AnySampler::Oasis(s) => s.estimator(),
                AnySampler::Stratified(_) | AnySampler::Sharded(_) => {
                    return Err(Error::InvalidParameter {
                        name: "state",
                        message: "merged AIS estimator over a non-AIS shard".to_string(),
                    })
                }
            };
            let (tp, predicted, actual, weight) = estimator.sums();
            weighted_tp += tp;
            weighted_predicted += predicted;
            weighted_actual += actual;
            total_weight += weight;
            weight_sq = match (weight_sq, estimator.weight_sq()) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
            iterations += estimator.iterations();
        }
        AisEstimator::from_parts(
            self.alpha,
            weighted_tp,
            weighted_predicted,
            weighted_actual,
            total_weight,
            weight_sq,
            iterations,
        )
    }

    /// The merged stratified estimate: transferred-mass sums (absolute item
    /// counts) summed across shards, finished by the same arithmetic the
    /// flat sampler uses.
    fn merged_stratified_estimate(&self) -> Estimate {
        let mut est_tp = 0.0;
        let mut est_predicted = 0.0;
        let mut est_actual = 0.0;
        let mut any_observed = false;
        let mut iterations = 0usize;
        for inner in &self.inners {
            if let AnySampler::Stratified(s) = inner {
                let (tp, predicted, actual, observed) = s.mass_sums();
                est_tp += tp;
                est_predicted += predicted;
                est_actual += actual;
                any_observed |= observed;
                iterations += s.iterations();
            }
        }
        finish_stratified_estimate(
            self.alpha,
            est_tp,
            est_predicted,
            est_actual,
            any_observed,
            iterations,
        )
    }
}

impl InteractiveSampler for ShardedSampler {
    /// Select a shard from the Fenwick masses (one variate off the caller's
    /// RNG), draw within the shard from its private RNG, then lift the local
    /// proposal to global indices and the global weight scale.
    fn propose<R: Rng + ?Sized>(&mut self, pool: &ScoredPool, rng: &mut R) -> Proposal {
        debug_assert_eq!(pool.len(), self.pool.len());
        let s = self.fenwick.sample(rng);
        let scale = self.weight_scale(s);
        let shard_pool = &self.pool.shards[s];
        let local = self.inners[s].propose(shard_pool, &mut self.shard_rngs[s]);
        Proposal {
            item: self.pool.item_offsets[s] + local.item,
            stratum: self.stratum_offsets[s] + local.stratum,
            prediction: local.prediction,
            weight: local.weight * scale,
        }
    }

    /// Route the label to the owning shard (translating indices back to
    /// local, keeping the global weight), then refresh only that shard's
    /// selection mass — O(inner apply + log K), independent of pool size.
    fn apply_label(&mut self, proposal: &Proposal, label: bool) {
        let s = self.pool.shard_of_item(proposal.item);
        let local = Proposal {
            item: proposal.item - self.pool.item_offsets[s],
            stratum: proposal.stratum.saturating_sub(self.stratum_offsets[s]),
            prediction: proposal.prediction,
            weight: proposal.weight,
        };
        self.inners[s].apply_label(&local, label);
        let mass = guarded_mass(self.pool.shard_weight(s), self.inners[s].proposal_mass());
        self.fenwick.set(s, mass);
    }

    fn estimate(&self) -> Estimate {
        if self.method == SamplerMethod::Stratified {
            self.merged_stratified_estimate()
        } else {
            match self.merged_estimator() {
                Ok(estimator) => estimator.estimate(),
                // Unreachable for genuinely accumulated sums; stay total.
                Err(_) => AisEstimator::new(self.alpha).estimate(),
            }
        }
    }

    fn name(&self) -> &'static str {
        "Sharded"
    }

    /// Sharding is a topology, not a method: report what the shards run, so
    /// sessions and the wire protocol echo the method the caller asked for.
    fn method(&self) -> SamplerMethod {
        self.method
    }

    fn strata_len(&self) -> usize {
        self.strata_total
    }

    /// Merged diagnostics: per-shard stratum vectors concatenate in shard
    /// order (matching the global stratum numbering), with each shard's
    /// instrumental distribution scaled by its selection probability so the
    /// merged vector is the true global instrumental.
    fn diagnostics(&self) -> SamplerDiagnostics {
        let selection = self.shard_selection();
        let mut iterations = 0usize;
        let mut cdf_rebuilds = 0u64;
        let mut stratum_labels = Vec::with_capacity(self.strata_total);
        let mut instrumental = Vec::with_capacity(self.strata_total);
        for (s, inner) in self.inners.iter().enumerate() {
            let inner_diagnostics = inner.diagnostics();
            iterations += inner_diagnostics.iterations;
            cdf_rebuilds += inner_diagnostics.cdf_rebuilds;
            stratum_labels.extend(inner_diagnostics.stratum_labels);
            instrumental.extend(
                inner_diagnostics
                    .instrumental
                    .into_iter()
                    .map(|p| p * selection[s]),
            );
        }
        let (effective_sample_size, normalized_weight_variance) =
            if self.method == SamplerMethod::Stratified {
                if iterations > 0 {
                    (Some(iterations as f64), Some(0.0))
                } else {
                    (None, None)
                }
            } else {
                match self.merged_estimator() {
                    Ok(estimator) => (
                        estimator.effective_sample_size(),
                        estimator.normalized_weight_variance(),
                    ),
                    Err(_) => (None, None),
                }
            };
        SamplerDiagnostics {
            method: self.method,
            iterations,
            effective_sample_size,
            normalized_weight_variance,
            stratum_labels,
            instrumental,
            cdf_rebuilds,
        }
    }

    /// Total selection mass — lets a higher-level driver treat this sampler
    /// like any other (though nesting sharded states is rejected on restore).
    fn proposal_mass(&self) -> f64 {
        let total = self.fenwick.total();
        if total.is_finite() && total > 0.0 {
            total
        } else {
            1.0
        }
    }

    fn state(&self) -> SamplerState {
        SamplerState::Sharded(ShardedState {
            method: self.method,
            shard_rngs: self.shard_rngs.iter().map(StdRng::state_words).collect(),
            shards: self.inners.iter().map(InteractiveSampler::state).collect(),
            tracker: None,
        })
    }

    fn from_state(pool: &ScoredPool, state: SamplerState) -> Result<Self> {
        match state {
            SamplerState::Sharded(state) => ShardedSampler::rebuild(pool, state),
            other => Err(Error::InvalidParameter {
                name: "state",
                message: format!(
                    "state is tagged {:?} but the sampler is sharded",
                    other.method().as_str()
                ),
            }),
        }
    }
}

impl Sampler for ShardedSampler {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{GroundTruthOracle, Oracle};
    use crate::samplers::TrackedSampler;

    fn pool_and_truth(n: usize, seed: u64) -> (ScoredPool, Vec<bool>) {
        crate::test_fixtures::pool_and_truth(n, seed, 0.15)
    }

    fn config() -> OasisConfig {
        OasisConfig::default().with_strata_count(6)
    }

    #[test]
    fn partition_is_contiguous_and_covers_the_pool() {
        let (pool, _) = pool_and_truth(103, 1);
        for k in [1usize, 2, 3, 7, 103] {
            let sharded = ShardedPool::partition(&pool, k).unwrap();
            assert_eq!(sharded.shard_count(), k);
            assert_eq!(sharded.len(), pool.len());
            assert!(!sharded.is_empty());
            let mut reassembled = 0usize;
            let mut weight_sum = 0.0;
            for s in 0..k {
                let shard = sharded.shard(s);
                assert!(!shard.is_empty(), "shard {s} empty at K={k}");
                assert_eq!(sharded.item_offset(s), reassembled);
                for j in 0..shard.len() {
                    let global = reassembled + j;
                    assert_eq!(shard.score(j), pool.score(global));
                    assert_eq!(shard.prediction(j), pool.prediction(global));
                    assert_eq!(sharded.shard_of_item(global), s);
                }
                reassembled += shard.len();
                weight_sum += sharded.shard_weight(s);
            }
            assert_eq!(reassembled, pool.len());
            assert!((weight_sum - 1.0).abs() < 1e-12);
        }
        assert!(ShardedPool::partition(&pool, 0).is_err());
        assert!(ShardedPool::partition(&pool, pool.len() + 1).is_err());
    }

    #[test]
    fn one_shard_run_is_bit_identical_to_the_flat_sampler() {
        // The K = 1 parity the module docs promise: same seed, same labels ⇒
        // same proposals (item/weight bits), same estimate bits, same
        // confidence-interval bits — for every method.
        let (pool, truth) = pool_and_truth(600, 2);
        for method in SamplerMethod::ALL {
            let seed = 41u64;
            let mut flat = TrackedSampler::new(
                AnySampler::build(method, &pool, &config()).unwrap(),
                config().alpha,
            );
            let mut sharded = TrackedSampler::new(
                ShardedSampler::new(method, &pool, &config(), 1, seed).unwrap(),
                config().alpha,
            );
            // The flat sampler draws from the session stream directly; the
            // sharded one burns the session stream on shard selection and
            // draws from its private shard stream, seeded identically.
            let mut rng_flat = StdRng::seed_from_u64(seed);
            let mut rng_session = StdRng::seed_from_u64(seed ^ 0xdead_beef);
            for _ in 0..300 {
                let a = flat.propose(&pool, &mut rng_flat);
                let b = sharded.propose(&pool, &mut rng_session);
                assert_eq!(a.item, b.item, "{method}");
                assert_eq!(a.stratum, b.stratum, "{method}");
                assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{method}");
                let label = truth[a.item];
                flat.apply_label(&a, label);
                sharded.apply_label(&b, label);
            }
            let ea = flat.estimate();
            let eb = sharded.estimate();
            assert_eq!(ea.f_measure.to_bits(), eb.f_measure.to_bits(), "{method}");
            assert_eq!(ea.precision.to_bits(), eb.precision.to_bits(), "{method}");
            assert_eq!(ea.recall.to_bits(), eb.recall.to_bits(), "{method}");
            assert_eq!(ea.iterations, eb.iterations, "{method}");
            let ca = flat.confidence_interval(0.95).unwrap();
            let cb = sharded.confidence_interval(0.95).unwrap();
            assert_eq!(ca.lower.to_bits(), cb.lower.to_bits(), "{method}");
            assert_eq!(ca.upper.to_bits(), cb.upper.to_bits(), "{method}");
            assert_eq!(
                ca.standard_error.to_bits(),
                cb.standard_error.to_bits(),
                "{method}"
            );
        }
    }

    #[test]
    fn merged_estimate_matches_exhaustive_measures_when_fully_labelled() {
        // Label every item in every shard: the stratified merge and the AIS
        // merges must all land on (or tightly around) the exhaustive truth.
        let (pool, truth) = pool_and_truth(400, 3);
        let target =
            crate::measures::exhaustive_measures(pool.predictions(), &truth, 0.5).f_measure;
        for method in SamplerMethod::ALL {
            let mut sampler = ShardedSampler::new(method, &pool, &config(), 4, 9).unwrap();
            let mut rng = StdRng::seed_from_u64(10);
            let mut oracle = GroundTruthOracle::new(truth.clone());
            sampler.run(&pool, &mut oracle, &mut rng, 12_000).unwrap();
            let estimate = sampler.estimate();
            assert!(
                (estimate.f_measure - target).abs() < 0.06,
                "{method}: merged {} vs exhaustive {target}",
                estimate.f_measure
            );
        }
    }

    #[test]
    fn proposals_cover_all_shards_and_weights_stay_consistent() {
        let (pool, truth) = pool_and_truth(500, 5);
        let shard_count = 5;
        let mut sampler =
            ShardedSampler::new(SamplerMethod::Oasis, &pool, &config(), shard_count, 7).unwrap();
        assert_eq!(sampler.shard_count(), shard_count);
        assert_eq!(
            sampler.strata_len(),
            (0..shard_count)
                .map(|s| sampler.shard_sampler(s).strata_len())
                .sum::<usize>()
        );
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = vec![false; shard_count];
        for _ in 0..600 {
            let proposal = sampler.propose(&pool, &mut rng);
            assert!(proposal.item < pool.len());
            assert!(proposal.stratum < sampler.strata_len());
            assert!(proposal.weight.is_finite() && proposal.weight > 0.0);
            assert_eq!(proposal.prediction, pool.prediction(proposal.item));
            seen[sampler.pool().shard_of_item(proposal.item)] = true;
            sampler.apply_label(&proposal, truth[proposal.item]);
        }
        assert!(seen.iter().all(|&s| s), "all shards proposed from");
        let selection = sampler.shard_selection();
        assert_eq!(selection.len(), shard_count);
        assert!((selection.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(selection.iter().all(|&q| q > 0.0));
    }

    #[test]
    fn state_round_trip_resumes_bit_for_bit() {
        let (pool, truth) = pool_and_truth(400, 6);
        for method in SamplerMethod::ALL {
            let mut sampler = ShardedSampler::new(method, &pool, &config(), 3, 21).unwrap();
            let mut rng = StdRng::seed_from_u64(22);
            let mut oracle = GroundTruthOracle::new(truth.clone());
            for _ in 0..150 {
                sampler.step(&pool, &mut oracle, &mut rng).unwrap();
            }
            let state = sampler.state();
            assert_eq!(state.method(), method);
            assert!(matches!(state, SamplerState::Sharded(_)));
            let mut restored = ShardedSampler::from_state(&pool, state).unwrap();
            assert_eq!(
                restored.estimate().f_measure.to_bits(),
                sampler.estimate().f_measure.to_bits(),
                "{method}"
            );
            // Continuing both with the same session stream stays identical —
            // including the private shard streams restored from state words.
            let mut rng_a = StdRng::seed_from_u64(23);
            let mut rng_b = StdRng::seed_from_u64(23);
            let mut oracle_a = GroundTruthOracle::new(truth.clone());
            let mut oracle_b = GroundTruthOracle::new(truth.clone());
            for _ in 0..100 {
                let a = sampler.step(&pool, &mut oracle_a, &mut rng_a).unwrap();
                let b = restored.step(&pool, &mut oracle_b, &mut rng_b).unwrap();
                assert_eq!(a.item, b.item, "{method}");
                assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{method}");
            }
            assert_eq!(
                sampler.estimate().f_measure.to_bits(),
                restored.estimate().f_measure.to_bits(),
                "{method}"
            );
        }
    }

    #[test]
    fn restore_rejects_corrupt_sharded_states() {
        let (pool, _) = pool_and_truth(200, 7);
        let sampler = ShardedSampler::new(SamplerMethod::Passive, &pool, &config(), 2, 1).unwrap();
        let good = match sampler.state() {
            SamplerState::Sharded(state) => state,
            other => panic!("unexpected tag {:?}", other.method()),
        };

        // RNG stream count must match the shard count.
        let mut bad = good.clone();
        bad.shard_rngs.pop();
        assert!(ShardedSampler::from_state(&pool, SamplerState::Sharded(bad)).is_err());

        // Shard tags must agree with the outer method tag.
        let mut bad = good.clone();
        bad.method = SamplerMethod::Oasis;
        assert!(ShardedSampler::from_state(&pool, SamplerState::Sharded(bad)).is_err());

        // No shards at all.
        let mut bad = good.clone();
        bad.shards.clear();
        bad.shard_rngs.clear();
        assert!(ShardedSampler::from_state(&pool, SamplerState::Sharded(bad)).is_err());

        // Nested sharded states are refused.
        let mut bad = good.clone();
        bad.shards[0] = SamplerState::Sharded(good.clone());
        assert!(ShardedSampler::from_state(&pool, SamplerState::Sharded(bad)).is_err());

        // A flat state is not a sharded one.
        let flat = crate::samplers::PassiveSampler::new(0.5).state();
        assert!(ShardedSampler::from_state(&pool, flat).is_err());
    }

    #[test]
    fn oracle_driven_run_consumes_the_session_stream_only_for_selection() {
        // Two sharded samplers over different session seeds but identical
        // shard seeds: shard-private streams mean per-shard draw sequences
        // depend only on how often each shard is selected, not on the
        // session stream's values between selections.  (Sanity check that
        // the RNG separation is really wired up.)
        let (pool, truth) = pool_and_truth(300, 8);
        let mut a = ShardedSampler::new(SamplerMethod::Passive, &pool, &config(), 3, 5).unwrap();
        let mut b = a.clone();
        let mut rng_a = StdRng::seed_from_u64(100);
        let mut rng_b = StdRng::seed_from_u64(200);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut selections_a = Vec::new();
        let mut selections_b = Vec::new();
        for _ in 0..60 {
            let pa = a.propose(&pool, &mut rng_a);
            let pb = b.propose(&pool, &mut rng_b);
            selections_a.push(a.pool().shard_of_item(pa.item));
            selections_b.push(b.pool().shard_of_item(pb.item));
            let la = oracle.query(pa.item, &mut rng_a).unwrap();
            a.apply_label(&pa, la);
            let lb = oracle.query(pb.item, &mut rng_b).unwrap();
            b.apply_label(&pb, lb);
        }
        // Different session streams select different shard sequences…
        assert_ne!(selections_a, selections_b);
        // …but whenever both runs visit the same shard for the k-th time,
        // the item drawn inside the shard is identical (same private
        // stream).  Compare the first visit to shard 0 in each run.
        let first_a = selections_a.iter().position(|&s| s == 0);
        let first_b = selections_b.iter().position(|&s| s == 0);
        if let (Some(_), Some(_)) = (first_a, first_b) {
            // Re-run to capture items (clone fresh samplers).
            let mut a2 =
                ShardedSampler::new(SamplerMethod::Passive, &pool, &config(), 3, 5).unwrap();
            let mut b2 =
                ShardedSampler::new(SamplerMethod::Passive, &pool, &config(), 3, 5).unwrap();
            let mut rng_a2 = StdRng::seed_from_u64(100);
            let mut rng_b2 = StdRng::seed_from_u64(200);
            let mut first_item_a = None;
            let mut first_item_b = None;
            for _ in 0..60 {
                let pa = a2.propose(&pool, &mut rng_a2);
                if first_item_a.is_none() && a2.pool().shard_of_item(pa.item) == 0 {
                    first_item_a = Some(pa.item);
                }
                let pb = b2.propose(&pool, &mut rng_b2);
                if first_item_b.is_none() && b2.pool().shard_of_item(pb.item) == 0 {
                    first_item_b = Some(pb.item);
                }
            }
            assert_eq!(first_item_a, first_item_b);
        }
    }
}
