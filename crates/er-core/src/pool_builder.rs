//! Assembling evaluation pools from datasets and scoring functions.
//!
//! A [`PoolBuilder`] walks a [`SyntheticDataset`]'s candidate pairs, extracts
//! similarity features, applies a caller-supplied scoring function (typically
//! a classifier trained by the `classifiers` crate) and produces a
//! [`LabelledPool`]: the [`oasis::ScoredPool`] the samplers consume plus the
//! hidden ground truth the oracle will answer from.

use crate::datasets::generator::SyntheticDataset;
use crate::features::FeatureExtractor;
use oasis::pool::ScoredPool;

/// A pool together with its (hidden) ground truth and the feature matrix it
/// was scored from.
#[derive(Debug, Clone)]
pub struct LabelledPool {
    /// The scored pool consumed by the samplers.
    pub pool: ScoredPool,
    /// Ground-truth labels, aligned with the pool items (for the oracle and
    /// for computing the target F-measure).
    pub truth: Vec<bool>,
    /// The per-pair similarity feature vectors the scores were computed from.
    pub features: Vec<Vec<f64>>,
}

impl LabelledPool {
    /// Number of items in the pool.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the pool is empty (never true for a constructed pool).
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Number of true matches in the pool.
    pub fn match_count(&self) -> usize {
        self.truth.iter().filter(|&&t| t).count()
    }
}

/// Builds [`LabelledPool`]s from datasets.
#[derive(Debug, Clone)]
pub struct PoolBuilder {
    extractor: FeatureExtractor,
}

impl PoolBuilder {
    /// Fit the feature extractor on the dataset's two sources.
    pub fn fit(dataset: &SyntheticDataset) -> Self {
        let extractor =
            FeatureExtractor::fit(&dataset.schema, &dataset.source_a, &dataset.source_b);
        PoolBuilder { extractor }
    }

    /// The fitted feature extractor.
    pub fn extractor(&self) -> &FeatureExtractor {
        &self.extractor
    }

    /// Extract the feature matrix and ground-truth labels for every candidate
    /// pair of the dataset, in pair order.
    pub fn feature_matrix(&self, dataset: &SyntheticDataset) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut features = Vec::with_capacity(dataset.pairs.len());
        let mut labels = Vec::with_capacity(dataset.pairs.len());
        for &pair in dataset.pairs.pairs() {
            let a = &dataset.source_a[pair.a];
            let b = &dataset.source_b[pair.b];
            features.push(self.extractor.features(a, b));
            labels.push(dataset.pairs.is_match(pair));
        }
        (features, labels)
    }

    /// Build a labelled pool by scoring every candidate pair with `score_fn`
    /// and predicting a match whenever the score exceeds `threshold`.
    ///
    /// `score_fn` receives the similarity feature vector of a pair and returns
    /// a real-valued score (probability or margin).
    pub fn build_pool<F>(
        &self,
        dataset: &SyntheticDataset,
        mut score_fn: F,
        threshold: f64,
    ) -> LabelledPool
    where
        F: FnMut(&[f64]) -> f64,
    {
        let (features, truth) = self.feature_matrix(dataset);
        let scores: Vec<f64> = features.iter().map(|f| score_fn(f)).collect();
        let predictions: Vec<bool> = scores.iter().map(|&s| s > threshold).collect();
        let pool = ScoredPool::new(scores, predictions)
            .expect("dataset pair spaces are non-empty and scores are finite");
        LabelledPool {
            pool,
            truth,
            features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::generator::GeneratorConfig;
    use crate::datasets::vocabulary::EntityKind;
    use oasis::measures::exhaustive_measures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dataset() -> SyntheticDataset {
        let mut rng = StdRng::seed_from_u64(11);
        SyntheticDataset::generate(
            GeneratorConfig::small_linkage(EntityKind::Product),
            &mut rng,
        )
    }

    /// A hand-rolled score: mean of the feature vector (all features are
    /// similarities in [0, 1], so this is a crude but monotone classifier).
    fn mean_score(features: &[f64]) -> f64 {
        features.iter().sum::<f64>() / features.len() as f64
    }

    #[test]
    fn feature_matrix_covers_every_pair() {
        let data = dataset();
        let builder = PoolBuilder::fit(&data);
        let (features, labels) = builder.feature_matrix(&data);
        assert_eq!(features.len(), data.pair_count());
        assert_eq!(labels.len(), data.pair_count());
        assert_eq!(features[0].len(), builder.extractor().feature_count());
        assert_eq!(labels.iter().filter(|&&l| l).count(), data.match_count());
    }

    #[test]
    fn built_pool_aligns_scores_predictions_and_truth() {
        let data = dataset();
        let builder = PoolBuilder::fit(&data);
        let labelled = builder.build_pool(&data, mean_score, 0.5);
        assert_eq!(labelled.len(), data.pair_count());
        assert!(!labelled.is_empty());
        assert_eq!(labelled.match_count(), data.match_count());
        for i in 0..labelled.len() {
            assert_eq!(labelled.pool.prediction(i), labelled.pool.score(i) > 0.5);
        }
    }

    #[test]
    fn mean_score_classifier_is_better_than_chance() {
        // Even a crude mean-of-similarities classifier should beat random
        // guessing on synthetic data, confirming the features carry signal.
        let data = dataset();
        let builder = PoolBuilder::fit(&data);
        let labelled = builder.build_pool(&data, mean_score, 0.5);
        let m = exhaustive_measures(labelled.pool.predictions(), &labelled.truth, 0.5);
        // Matching pairs share brand/price/description, so recall should be
        // clearly positive and precision far above the base rate (~0.3%).
        assert!(m.recall > 0.3, "recall {}", m.recall);
        assert!(m.precision > 0.1, "precision {}", m.precision);
    }

    #[test]
    fn threshold_controls_prediction_count() {
        let data = dataset();
        let builder = PoolBuilder::fit(&data);
        let strict = builder.build_pool(&data, mean_score, 0.8);
        let lax = builder.build_pool(&data, mean_score, 0.2);
        assert!(lax.pool.predicted_match_count() >= strict.pool.predicted_match_count());
    }
}
