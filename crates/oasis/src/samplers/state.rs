//! Serializable sampler state for checkpoint/resume.
//!
//! Every sampler implementing [`InteractiveSampler`](super::InteractiveSampler)
//! exposes its full resumable state through the method-tagged [`SamplerState`]
//! enum: [`OasisState`] for the adaptive sampler, and the lighter
//! [`PassiveState`] / [`ImportanceState`] / [`StratifiedState`] for the
//! baselines.  A state captures everything a sampler needs to continue a run
//! bit-for-bit; the caller's RNG is *not* part of it — samplers borrow their
//! generator — so resumable drivers (the `oasis-engine` crate) persist the
//! RNG words alongside.
//!
//! The states are plain data types; JSON conversion lives in
//! [`crate::serial`].  States may come from untrusted checkpoint documents,
//! so every `rebuild` validates before constructing (overlapping strata
//! allocations, corrupt estimator sums, mismatched row lengths are all
//! rejected rather than silently skewing later estimates).

use super::importance::ImportanceSampler;
use super::oasis_sampler::{OasisConfig, OasisSampler};
use super::passive::PassiveSampler;
use super::stratified::StratifiedSampler;
use crate::bayes::BetaBernoulliModel;
use crate::confidence::VarianceTracker;
use crate::error::{Error, Result};
use crate::estimator::AisEstimator;
use crate::pool::ScoredPool;
use crate::strata::Strata;
use serde::{Deserialize, Serialize};

/// The sampling method a state (or a live sampler) belongs to.
///
/// This is the tag that makes sessions, checkpoints and the `oasis-serve`
/// wire protocol method-agnostic: everywhere a concrete sampler type used to
/// be named, a `SamplerMethod` value travels instead.  The string forms
/// (`"oasis"`, `"passive"`, `"importance"`, `"stratified"`) are the wire
/// names used by the protocol's `create_session` command and the JSON
/// encoding of [`SamplerState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SamplerMethod {
    /// The paper's adaptive sampler ([`OasisSampler`]).
    Oasis,
    /// Uniform i.i.d. sampling ([`PassiveSampler`]).
    Passive,
    /// Static importance sampling ([`ImportanceSampler`]).
    Importance,
    /// Proportional stratified sampling ([`StratifiedSampler`]).
    Stratified,
}

impl SamplerMethod {
    /// All methods, in the order the paper compares them (Section 6.2).
    pub const ALL: [SamplerMethod; 4] = [
        SamplerMethod::Oasis,
        SamplerMethod::Passive,
        SamplerMethod::Importance,
        SamplerMethod::Stratified,
    ];

    /// The wire name (`"oasis"`, `"passive"`, `"importance"`,
    /// `"stratified"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            SamplerMethod::Oasis => "oasis",
            SamplerMethod::Passive => "passive",
            SamplerMethod::Importance => "importance",
            SamplerMethod::Stratified => "stratified",
        }
    }

    /// Parse a wire name.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] naming the offending value and the
    /// accepted set, so protocol layers can surface a structured error.
    pub fn parse(name: &str) -> Result<SamplerMethod> {
        match name {
            "oasis" => Ok(SamplerMethod::Oasis),
            "passive" => Ok(SamplerMethod::Passive),
            "importance" => Ok(SamplerMethod::Importance),
            "stratified" => Ok(SamplerMethod::Stratified),
            other => Err(Error::InvalidParameter {
                name: "method",
                message: format!(
                    "unknown sampling method {other:?} (expected one of \
                     \"oasis\", \"passive\", \"importance\", \"stratified\")"
                ),
            }),
        }
    }
}

impl std::fmt::Display for SamplerMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Snapshot of an [`AisEstimator`]: the four weighted sums of Eqn. 3 plus the
/// iteration count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorState {
    /// F-measure weight α.
    pub alpha: f64,
    /// Σ w·ℓ·ℓ̂ — weighted true positives.
    pub weighted_tp: f64,
    /// Σ w·ℓ̂ — weighted predicted positives.
    pub weighted_predicted: f64,
    /// Σ w·ℓ — weighted actual positives.
    pub weighted_actual: f64,
    /// Σ w — total weight.
    pub total_weight: f64,
    /// Σ w² — the weight second moment behind the ground-truth-free ESS
    /// diagnostic.  `None` for snapshots written before it was tracked; such
    /// documents restore exactly but report no ESS (never a fabricated one).
    pub weight_sq: Option<f64>,
    /// Number of observations folded in.
    pub iterations: usize,
}

impl EstimatorState {
    /// Capture an estimator's accumulated sums.
    pub fn capture(estimator: &AisEstimator) -> Self {
        let (weighted_tp, weighted_predicted, weighted_actual, total_weight) = estimator.sums();
        EstimatorState {
            alpha: estimator.alpha(),
            weighted_tp,
            weighted_predicted,
            weighted_actual,
            total_weight,
            weight_sq: estimator.weight_sq(),
            iterations: estimator.iterations(),
        }
    }

    /// Rebuild the estimator; the restored accumulator continues bit-for-bit.
    ///
    /// # Errors
    /// Propagates [`AisEstimator::from_parts`] validation (corrupt sums).
    pub fn rebuild(&self) -> Result<AisEstimator> {
        AisEstimator::from_parts(
            self.alpha,
            self.weighted_tp,
            self.weighted_predicted,
            self.weighted_actual,
            self.total_weight,
            self.weight_sq,
            self.iterations,
        )
    }
}

/// Snapshot of a [`VarianceTracker`]: the bivariate running sums behind the
/// delta-method variance estimate (see [`crate::confidence`]), plus the
/// observation count and α.
///
/// Every sampler state payload carries an *optional* tracker
/// (`tracker: Option<TrackerState>`): [`super::TrackedSampler`] attaches one
/// when it captures state, while bare samplers (and pre-tracker checkpoint
/// documents) leave it `None`.  An absent tracker restores into a
/// [`super::TrackedSampler`] whose variance history is *incomplete* — the
/// wrapper flags that instead of reporting intervals as if nothing were
/// missing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerState {
    /// F-measure weight α.
    pub alpha: f64,
    /// Number of observations (stored as f64, exactly as accumulated).
    pub count: f64,
    /// Σ n_t where `n_t = w·ℓ·ℓ̂`.
    pub sum_n: f64,
    /// Σ d_t where `d_t = w·(α·ℓ̂ + (1−α)·ℓ)`.
    pub sum_d: f64,
    /// Σ n_t².
    pub sum_nn: f64,
    /// Σ d_t².
    pub sum_dd: f64,
    /// Σ n_t·d_t.
    pub sum_nd: f64,
}

impl TrackerState {
    /// Capture a tracker's accumulated sums.
    pub fn capture(tracker: &VarianceTracker) -> Self {
        let (count, sum_n, sum_d, sum_nn, sum_dd, sum_nd) = tracker.sums();
        TrackerState {
            alpha: tracker.alpha(),
            count,
            sum_n,
            sum_d,
            sum_nn,
            sum_dd,
            sum_nd,
        }
    }

    /// Rebuild the tracker; the restored accumulator continues bit-for-bit.
    ///
    /// # Errors
    /// Propagates [`VarianceTracker::from_parts`] validation (corrupt sums).
    pub fn rebuild(&self) -> Result<VarianceTracker> {
        VarianceTracker::from_parts(
            self.alpha,
            self.count,
            self.sum_n,
            self.sum_d,
            self.sum_nn,
            self.sum_dd,
            self.sum_nd,
        )
    }
}

/// Reject allocations that place one pool item in more than one slot (within
/// or across strata) — such a state would silently skew the stratum weights
/// and every later estimate.  Out-of-range indices are rejected separately by
/// [`Strata::from_allocations`].
fn validate_allocations_disjoint(pool: &ScoredPool, allocations: &[Vec<usize>]) -> Result<()> {
    let mut seen = vec![false; pool.len()];
    for stratum in allocations {
        for &item in stratum {
            if let Some(flag) = seen.get_mut(item) {
                if *flag {
                    return Err(Error::InvalidParameter {
                        name: "allocations",
                        message: format!("pool item {item} allocated to more than one slot"),
                    });
                }
                *flag = true;
            }
        }
    }
    Ok(())
}

/// Full serializable state of an [`OasisSampler`].
///
/// Produced by [`InteractiveSampler::state`](super::InteractiveSampler::state)
/// (as [`SamplerState::Oasis`]), consumed by
/// [`OasisSampler::from_state`](super::InteractiveSampler::from_state).  A
/// round trip through this type (and through its JSON form,
/// [`crate::serial`]) is exact: resuming a restored sampler with a restored
/// RNG produces the same estimates, bit-for-bit, as never having stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OasisState {
    /// The sampler configuration.
    pub config: OasisConfig,
    /// The exact stratification: pool indices per stratum.
    pub allocations: Vec<Vec<usize>>,
    /// Prior pseudo-counts for label 1, per stratum.
    pub prior_gamma0: Vec<f64>,
    /// Prior pseudo-counts for label 0, per stratum.
    pub prior_gamma1: Vec<f64>,
    /// Observed label-1 counts per stratum.
    pub observed_matches: Vec<f64>,
    /// Observed label-0 counts per stratum.
    pub observed_non_matches: Vec<f64>,
    /// Whether prior decay (Remark 4) is enabled.
    pub decay_prior: bool,
    /// The AIS estimator accumulator.
    pub estimator: EstimatorState,
    /// The Algorithm 2 initial F-measure guess.
    pub initial_f_guess: f64,
    /// The instrumental distribution used at the most recent step.
    pub current_proposal: Vec<f64>,
    /// How many times the instrumental CDF had been refit when the state was
    /// captured (0 for documents written before the counter existed).
    pub cdf_rebuilds: u64,
    /// Variance-tracker sums, when captured through a
    /// [`super::TrackedSampler`]; `None` for bare samplers and pre-tracker
    /// documents.
    pub tracker: Option<TrackerState>,
}

impl OasisState {
    /// Rebuild a sampler against `pool`.
    ///
    /// The pool must be the one the state was captured against (the engine
    /// layer verifies this with a fingerprint); `Strata::from_allocations`
    /// recomputes the per-stratum summary statistics from the pool, which
    /// reproduces the original values exactly because the summation order is
    /// identical.
    ///
    /// # Errors
    /// Propagates validation failures from the config, strata and model
    /// constructors (e.g. allocations referencing items outside the pool).
    pub fn rebuild(self, pool: &ScoredPool) -> Result<OasisSampler> {
        validate_allocations_disjoint(pool, &self.allocations)?;
        let strata = Strata::from_allocations(pool, self.allocations)?;
        let model = BetaBernoulliModel::from_state(
            self.prior_gamma0,
            self.prior_gamma1,
            self.observed_matches,
            self.observed_non_matches,
            self.decay_prior,
        )?;
        OasisSampler::from_parts(
            self.config,
            strata,
            model,
            self.estimator.rebuild()?,
            self.initial_f_guess,
            self.current_proposal,
            self.cdf_rebuilds,
        )
    }
}

/// Full serializable state of a [`PassiveSampler`]: the estimator
/// accumulator is the whole sampler (draws are uniform, so nothing else is
/// adaptive or random beyond the caller's RNG).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassiveState {
    /// The (unit-weight) estimator accumulator.
    pub estimator: EstimatorState,
    /// Variance-tracker sums, when captured through a
    /// [`super::TrackedSampler`].
    pub tracker: Option<TrackerState>,
}

impl PassiveState {
    /// Rebuild the sampler.
    ///
    /// # Errors
    /// Propagates estimator validation (corrupt sums).
    pub fn rebuild(self) -> Result<PassiveSampler> {
        Ok(PassiveSampler::from_parts(self.estimator.rebuild()?))
    }
}

/// Full serializable state of an [`ImportanceSampler`].
///
/// The static instrumental distribution is *not* embedded: it is a pure
/// deterministic function of the pool's scores, `alpha` (carried inside the
/// estimator state) and `score_threshold`, so `rebuild` recomputes it with
/// identical IEEE-754 operations and lands on identical bits.  The engine
/// layer's pool fingerprint guarantees the pool is the one the state was
/// captured against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportanceState {
    /// Decision threshold τ used to squash non-probability scores.
    pub score_threshold: f64,
    /// The AIS estimator accumulator.
    pub estimator: EstimatorState,
    /// Variance-tracker sums, when captured through a
    /// [`super::TrackedSampler`].
    pub tracker: Option<TrackerState>,
}

impl ImportanceState {
    /// Rebuild the sampler against `pool` (see type docs for why the
    /// proposal is recomputed rather than stored).
    ///
    /// # Errors
    /// Propagates estimator/constructor validation.
    pub fn rebuild(self, pool: &ScoredPool) -> Result<ImportanceSampler> {
        let estimator = self.estimator.rebuild()?;
        ImportanceSampler::from_parts(pool, self.score_threshold, estimator)
    }
}

/// Full serializable state of a [`StratifiedSampler`]: the exact
/// stratification plus the per-stratum tallies of the stratified estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratifiedState {
    /// F-measure weight α.
    pub alpha: f64,
    /// The exact stratification: pool indices per stratum.
    pub allocations: Vec<Vec<usize>>,
    /// Labelled draw counts per stratum.
    pub samples: Vec<f64>,
    /// Σ ℓ·ℓ̂ per stratum.
    pub true_positives: Vec<f64>,
    /// Σ ℓ per stratum.
    pub actual_positives: Vec<f64>,
    /// Total sampling iterations folded in.
    pub iterations: usize,
    /// Variance-tracker sums, when captured through a
    /// [`super::TrackedSampler`].
    pub tracker: Option<TrackerState>,
}

impl StratifiedState {
    /// Rebuild the sampler against `pool`.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] on overlapping allocations, tally rows
    /// that do not cover the strata, or corrupt (non-finite, negative, or
    /// inconsistent) tally values.
    pub fn rebuild(self, pool: &ScoredPool) -> Result<StratifiedSampler> {
        if !(0.0..=1.0).contains(&self.alpha) || self.alpha.is_nan() {
            return Err(Error::InvalidParameter {
                name: "alpha",
                message: format!("must be in [0, 1], got {}", self.alpha),
            });
        }
        validate_allocations_disjoint(pool, &self.allocations)?;
        let strata = Strata::from_allocations(pool, self.allocations)?;
        let k = strata.len();
        if self.samples.len() != k
            || self.true_positives.len() != k
            || self.actual_positives.len() != k
        {
            return Err(Error::InvalidParameter {
                name: "tallies",
                message: format!(
                    "tally rows must cover all {k} strata (got {}, {}, {})",
                    self.samples.len(),
                    self.true_positives.len(),
                    self.actual_positives.len()
                ),
            });
        }
        for ((&n, &tp), &actual) in self
            .samples
            .iter()
            .zip(self.true_positives.iter())
            .zip(self.actual_positives.iter())
        {
            // tp counts ℓ·ℓ̂ and actual counts ℓ over the same draws, so
            // 0 ≤ tp ≤ actual ≤ samples for any genuine tally.
            let sane = n.is_finite()
                && tp.is_finite()
                && actual.is_finite()
                && n >= 0.0
                && (0.0..=n).contains(&actual)
                && (0.0..=actual).contains(&tp);
            if !sane {
                return Err(Error::InvalidParameter {
                    name: "tallies",
                    message: format!(
                        "corrupt stratum tally (samples {n}, true positives {tp}, \
                         actual positives {actual})"
                    ),
                });
            }
        }
        StratifiedSampler::from_parts(
            strata,
            self.alpha,
            self.samples,
            self.true_positives,
            self.actual_positives,
            self.iterations,
        )
    }
}

/// Full serializable state of a [`ShardedSampler`](super::ShardedSampler):
/// the inner method tag, one [`SamplerState`] per shard (in shard order), and
/// the per-shard RNG streams.
///
/// Unlike the flat sampler states, the sharded sampler *owns* its per-shard
/// generators (the caller's RNG only selects shards), so those streams are
/// part of the resumable state: `shard_rngs[i]` holds the four
/// [`rand::rngs::StdRng`] state words of shard `i`.  The shard partition
/// itself is not stored — it is the canonical contiguous split of the pool
/// into `shards.len()` pieces, recomputed exactly on rebuild.
///
/// The rebuild path lives next to the sampler in
/// [`super::sharding`]; this type is plain data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedState {
    /// The method every shard runs (shards are homogeneous).
    pub method: SamplerMethod,
    /// Per-shard RNG state words, in shard order.
    pub shard_rngs: Vec<[u64; 4]>,
    /// Per-shard sampler states, in shard order.  Each is a flat (non-sharded)
    /// state; inner trackers are unused — the session-level tracker rides in
    /// `tracker` below.
    pub shards: Vec<SamplerState>,
    /// Variance-tracker sums, when captured through a
    /// [`super::TrackedSampler`].
    pub tracker: Option<TrackerState>,
}

/// Method-tagged serializable sampler state — the type that makes sessions,
/// checkpoints and the wire protocol method-agnostic.
///
/// Produced by [`InteractiveSampler::state`](super::InteractiveSampler::state),
/// consumed by [`InteractiveSampler::from_state`](super::InteractiveSampler::from_state)
/// (which rejects a variant for the wrong sampler) or by
/// [`AnySampler::from_state`](super::AnySampler::from_state) (which dispatches
/// on the tag).  The JSON encoding carries the tag as a `"method"` field;
/// documents without one predate the tagged form and are read as OASIS states
/// for backward compatibility.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SamplerState {
    /// State of an [`OasisSampler`].
    Oasis(OasisState),
    /// State of a [`PassiveSampler`].
    Passive(PassiveState),
    /// State of an [`ImportanceSampler`].
    Importance(ImportanceState),
    /// State of a [`StratifiedSampler`].
    Stratified(StratifiedState),
    /// State of a [`ShardedSampler`](super::ShardedSampler) — a vector of
    /// per-shard states plus per-shard RNG streams.
    Sharded(ShardedState),
}

impl SamplerState {
    /// The method tag.
    ///
    /// A sharded state reports the method its *shards* run — sharding is an
    /// execution topology, not a sampling method, so sessions and the wire
    /// protocol keep echoing `"oasis"` (or whichever) for sharded runs.
    /// Restore paths that need to distinguish the topology match on the
    /// [`SamplerState::Sharded`] variant itself.
    pub fn method(&self) -> SamplerMethod {
        match self {
            SamplerState::Oasis(_) => SamplerMethod::Oasis,
            SamplerState::Passive(_) => SamplerMethod::Passive,
            SamplerState::Importance(_) => SamplerMethod::Importance,
            SamplerState::Stratified(_) => SamplerMethod::Stratified,
            SamplerState::Sharded(s) => s.method,
        }
    }

    /// The F-measure weight α the state's estimator targets.
    pub fn alpha(&self) -> f64 {
        match self {
            SamplerState::Oasis(s) => s.estimator.alpha,
            SamplerState::Passive(s) => s.estimator.alpha,
            SamplerState::Importance(s) => s.estimator.alpha,
            SamplerState::Stratified(s) => s.alpha,
            SamplerState::Sharded(s) => s.shards.first().map_or(f64::NAN, SamplerState::alpha),
        }
    }

    /// Observations the estimator has folded in — used to tell "no tracker
    /// because nothing happened yet" from "no tracker because the document
    /// predates tracker serialization".
    pub fn iterations(&self) -> usize {
        match self {
            SamplerState::Oasis(s) => s.estimator.iterations,
            SamplerState::Passive(s) => s.estimator.iterations,
            SamplerState::Importance(s) => s.estimator.iterations,
            SamplerState::Stratified(s) => s.iterations,
            SamplerState::Sharded(s) => s.shards.iter().map(SamplerState::iterations).sum(),
        }
    }

    /// The variance-tracker snapshot, if one was captured.
    pub fn tracker(&self) -> Option<&TrackerState> {
        match self {
            SamplerState::Oasis(s) => s.tracker.as_ref(),
            SamplerState::Passive(s) => s.tracker.as_ref(),
            SamplerState::Importance(s) => s.tracker.as_ref(),
            SamplerState::Stratified(s) => s.tracker.as_ref(),
            SamplerState::Sharded(s) => s.tracker.as_ref(),
        }
    }

    /// Attach (or clear) the variance-tracker snapshot.
    pub fn set_tracker(&mut self, tracker: Option<TrackerState>) {
        match self {
            SamplerState::Oasis(s) => s.tracker = tracker,
            SamplerState::Passive(s) => s.tracker = tracker,
            SamplerState::Importance(s) => s.tracker = tracker,
            SamplerState::Stratified(s) => s.tracker = tracker,
            SamplerState::Sharded(s) => s.tracker = tracker,
        }
    }

    /// How the state describes itself in mismatch errors: the method tag,
    /// with the sharded topology spelled out.
    fn tag_description(&self) -> String {
        match self {
            SamplerState::Sharded(s) => format!("sharded {:?}", s.method.as_str()),
            other => format!("{:?}", other.method().as_str()),
        }
    }

    /// The error every `from_state` raises when handed a state whose tag
    /// names a different method.
    pub(super) fn method_mismatch(&self, expected: SamplerMethod) -> Error {
        Error::InvalidParameter {
            name: "state",
            message: format!(
                "state is tagged {} but the sampler is {:?}",
                self.tag_description(),
                expected.as_str()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::samplers::{InteractiveSampler, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool_and_truth(n: usize, seed: u64) -> (ScoredPool, Vec<bool>) {
        crate::test_fixtures::pool_and_truth(n, seed, 0.08)
    }

    #[test]
    fn method_names_round_trip() {
        for method in SamplerMethod::ALL {
            assert_eq!(SamplerMethod::parse(method.as_str()).unwrap(), method);
            assert_eq!(format!("{method}"), method.as_str());
        }
        assert!(SamplerMethod::parse("bogus").is_err());
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let (pool, truth) = pool_and_truth(1500, 4);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(12)).unwrap();
        for _ in 0..200 {
            sampler.step(&pool, &mut oracle, &mut rng).unwrap();
        }
        let state = sampler.state();
        assert_eq!(state.method(), SamplerMethod::Oasis);
        let restored = OasisSampler::from_state(&pool, state.clone()).unwrap();

        // The restored sampler is indistinguishable: same estimate bits, same
        // posterior, same proposal.
        let a = sampler.estimate();
        let b = restored.estimate();
        assert_eq!(a.f_measure.to_bits(), b.f_measure.to_bits());
        assert_eq!(a.precision.to_bits(), b.precision.to_bits());
        assert_eq!(a.recall.to_bits(), b.recall.to_bits());
        assert_eq!(sampler.pi_estimates(), restored.pi_estimates());
        assert_eq!(sampler.current_proposal(), restored.current_proposal());
        assert_eq!(sampler.compute_proposal(), restored.compute_proposal());

        // Continuing both sides with the same RNG stays identical.
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let mut oracle_a = GroundTruthOracle::new(vec![true; pool.len()]);
        let mut oracle_b = GroundTruthOracle::new(vec![true; pool.len()]);
        let mut sampler_b = restored;
        let mut sampler_a = sampler;
        for _ in 0..100 {
            let oa = sampler_a.step(&pool, &mut oracle_a, &mut rng_a).unwrap();
            let ob = sampler_b.step(&pool, &mut oracle_b, &mut rng_b).unwrap();
            assert_eq!(oa.item, ob.item);
            assert_eq!(oa.weight.to_bits(), ob.weight.to_bits());
        }
    }

    #[test]
    fn propose_batch_matches_repeated_propose_bitwise() {
        let (pool, _) = pool_and_truth(600, 8);
        let mut a = OasisSampler::new(&pool, OasisConfig::default().with_strata_count(8)).unwrap();
        let mut b = a.clone();
        let mut rng_a = StdRng::seed_from_u64(55);
        let mut rng_b = StdRng::seed_from_u64(55);
        let batch = a.propose_batch(&pool, &mut rng_a, 20);
        let singles: Vec<_> = (0..20).map(|_| b.propose(&pool, &mut rng_b)).collect();
        assert_eq!(batch.len(), 20);
        for (x, y) in batch.iter().zip(singles.iter()) {
            assert_eq!(x.item, y.item);
            assert_eq!(x.stratum, y.stratum);
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
        assert_eq!(a.current_proposal(), b.current_proposal());
        assert!(a.propose_batch(&pool, &mut rng_a, 0).is_empty());
    }

    fn oasis_state(sampler: &OasisSampler) -> OasisState {
        match sampler.state() {
            SamplerState::Oasis(state) => state,
            other => panic!("unexpected tag {:?}", other.method()),
        }
    }

    #[test]
    fn rebuild_rejects_overlapping_allocations() {
        let (pool, _) = pool_and_truth(50, 9);
        let sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(4)).unwrap();
        // Duplicate within one stratum.
        let mut state = oasis_state(&sampler);
        let item = state.allocations[0][0];
        state.allocations[0].push(item);
        assert!(state.rebuild(&pool).is_err());
        // Duplicate across strata.
        let mut state = oasis_state(&sampler);
        let item = state.allocations[0][0];
        state.allocations[1].push(item);
        assert!(state.rebuild(&pool).is_err());
    }

    #[test]
    fn rebuild_rejects_allocations_outside_the_pool() {
        let (pool, _) = pool_and_truth(50, 6);
        let sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(4)).unwrap();
        let mut state = oasis_state(&sampler);
        state.allocations[0].push(10_000);
        assert!(state.rebuild(&pool).is_err());
    }

    #[test]
    fn rebuild_rejects_corrupt_model_rows() {
        let (pool, _) = pool_and_truth(50, 7);
        let sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(4)).unwrap();
        let mut state = oasis_state(&sampler);
        state.observed_matches.pop();
        assert!(state.rebuild(&pool).is_err());
    }

    #[test]
    fn from_state_rejects_mismatched_tags() {
        let (pool, _) = pool_and_truth(60, 11);
        let passive = PassiveSampler::new(0.5);
        let state = passive.state();
        assert!(OasisSampler::from_state(&pool, state.clone()).is_err());
        assert!(ImportanceSampler::from_state(&pool, state.clone()).is_err());
        assert!(StratifiedSampler::from_state(&pool, state).is_err());
    }

    #[test]
    fn stratified_rebuild_rejects_corrupt_tallies() {
        let (pool, truth) = pool_and_truth(200, 12);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = StratifiedSampler::new(&pool, 0.5, 6).unwrap();
        for _ in 0..40 {
            sampler.step(&pool, &mut oracle, &mut rng).unwrap();
        }
        let good = match sampler.state() {
            SamplerState::Stratified(state) => state,
            other => panic!("unexpected tag {:?}", other.method()),
        };
        assert!(good.clone().rebuild(&pool).is_ok());

        let mut short = good.clone();
        short.samples.pop();
        assert!(short.rebuild(&pool).is_err());

        // Tallies claiming more positives than draws are impossible.
        let mut inflated = good.clone();
        inflated.true_positives[0] = inflated.samples[0] + 1.0;
        assert!(inflated.rebuild(&pool).is_err());

        // As are more true positives than actual positives (tp counts ℓ·ℓ̂,
        // actual counts ℓ) — that tally would restore into recall > 1.
        let mut impossible = good.clone();
        impossible.samples[0] = 10.0;
        impossible.true_positives[0] = 10.0;
        impossible.actual_positives[0] = 1.0;
        assert!(impossible.rebuild(&pool).is_err());

        for corrupt in [f64::NAN, f64::INFINITY, -1.0] {
            let mut bad = good.clone();
            bad.samples[0] = corrupt;
            assert!(bad.rebuild(&pool).is_err(), "samples {corrupt}");
        }

        // Alpha outside [0, 1] must be rejected like every other method's
        // restore path does.
        for corrupt in [f64::NAN, -0.1, 1.5] {
            let mut bad = good.clone();
            bad.alpha = corrupt;
            assert!(bad.rebuild(&pool).is_err(), "alpha {corrupt}");
        }
    }
}
