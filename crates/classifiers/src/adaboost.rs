//! AdaBoost over decision stumps.
//!
//! The "AB" classifier of the paper's Figure 5.  Weak learners are
//! single-feature threshold rules (decision stumps); the boosted score is the
//! weighted sum of stump votes, an unbounded margin-like quantity.

use crate::dataset::TrainingSet;
use crate::Classifier;

/// A single decision stump: vote +1 if `polarity · (x[feature] − threshold) > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stump {
    feature: usize,
    threshold: f64,
    /// +1.0 or −1.0.
    polarity: f64,
    /// The boosting weight α of this stump.
    alpha: f64,
}

impl Stump {
    fn vote(&self, features: &[f64]) -> f64 {
        let value = features.get(self.feature).copied().unwrap_or(0.0);
        if self.polarity * (value - self.threshold) > 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// Hyperparameters of AdaBoost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaBoostConfig {
    /// Number of boosting rounds (stumps).
    pub rounds: usize,
    /// Number of candidate thresholds per feature when searching for the best
    /// stump.
    pub threshold_candidates: usize,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        AdaBoostConfig {
            rounds: 50,
            threshold_candidates: 24,
        }
    }
}

/// A trained AdaBoost ensemble of decision stumps.
#[derive(Debug, Clone)]
pub struct AdaBoostClassifier {
    stumps: Vec<Stump>,
}

impl AdaBoostClassifier {
    /// Train with default hyperparameters.
    pub fn train(data: &TrainingSet) -> Self {
        Self::train_with(data, AdaBoostConfig::default())
    }

    /// Train with explicit hyperparameters.
    ///
    /// # Panics
    /// Panics if the training set is empty.
    pub fn train_with(data: &TrainingSet, config: AdaBoostConfig) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty training set");
        let n = data.len();
        let d = data.feature_count();
        let targets: Vec<f64> = data
            .labels
            .iter()
            .map(|&l| if l { 1.0 } else { -1.0 })
            .collect();
        let mut sample_weights = vec![1.0 / n as f64; n];
        let mut stumps = Vec::with_capacity(config.rounds);

        // Pre-compute candidate thresholds per feature from the data range.
        let mut candidates: Vec<Vec<f64>> = Vec::with_capacity(d);
        for feature in 0..d {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for row in &data.features {
                min = min.min(row[feature]);
                max = max.max(row[feature]);
            }
            let steps = config.threshold_candidates.max(1);
            let thresholds = (0..=steps)
                .map(|s| min + (max - min) * s as f64 / steps as f64)
                .collect();
            candidates.push(thresholds);
        }

        for _ in 0..config.rounds {
            // Find the stump with minimal weighted error.
            let mut best: Option<(Stump, f64)> = None;
            for (feature, thresholds) in candidates.iter().enumerate() {
                for &threshold in thresholds {
                    for polarity in [1.0, -1.0] {
                        let stump = Stump {
                            feature,
                            threshold,
                            polarity,
                            alpha: 0.0,
                        };
                        let mut error = 0.0;
                        for i in 0..n {
                            if stump.vote(&data.features[i]) != targets[i] {
                                error += sample_weights[i];
                            }
                        }
                        if best.as_ref().map(|&(_, e)| error < e).unwrap_or(true) {
                            best = Some((stump, error));
                        }
                    }
                }
            }
            let (mut stump, error) = best.expect("at least one candidate stump");
            let error = error.clamp(1e-10, 1.0 - 1e-10);
            if error >= 0.5 {
                // No weak learner better than chance — stop boosting.
                break;
            }
            stump.alpha = 0.5 * ((1.0 - error) / error).ln();

            // Re-weight the samples.
            let mut total = 0.0;
            for i in 0..n {
                let margin = targets[i] * stump.vote(&data.features[i]);
                sample_weights[i] *= (-stump.alpha * margin).exp();
                total += sample_weights[i];
            }
            for w in &mut sample_weights {
                *w /= total;
            }
            stumps.push(stump);
        }
        AdaBoostClassifier { stumps }
    }

    /// Number of stumps in the ensemble.
    pub fn ensemble_size(&self) -> usize {
        self.stumps.len()
    }
}

impl Classifier for AdaBoostClassifier {
    fn score(&self, features: &[f64]) -> f64 {
        self.stumps.iter().map(|s| s.alpha * s.vote(features)).sum()
    }

    fn decision_threshold(&self) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "AB"
    }

    fn scores_are_probabilities(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_svm::test_support::synthetic_pair_data;
    use crate::metrics::{accuracy, roc_auc};

    #[test]
    fn learns_a_separable_problem() {
        let train = synthetic_pair_data(600, 0.4, 41);
        let test = synthetic_pair_data(400, 0.4, 42);
        let ab = AdaBoostClassifier::train(&train);
        let predictions: Vec<bool> = test.features.iter().map(|f| ab.predict(f)).collect();
        assert!(accuracy(&predictions, &test.labels) > 0.9);
        let scores: Vec<f64> = test.features.iter().map(|f| ab.score(f)).collect();
        assert!(roc_auc(&scores, &test.labels) > 0.95);
    }

    #[test]
    fn boosting_improves_over_a_single_stump() {
        let train = synthetic_pair_data(800, 0.4, 43);
        let test = synthetic_pair_data(800, 0.4, 44);
        let single = AdaBoostClassifier::train_with(
            &train,
            AdaBoostConfig {
                rounds: 1,
                ..AdaBoostConfig::default()
            },
        );
        let boosted = AdaBoostClassifier::train_with(
            &train,
            AdaBoostConfig {
                rounds: 40,
                ..AdaBoostConfig::default()
            },
        );
        let auc_single = roc_auc(
            &test
                .features
                .iter()
                .map(|f| single.score(f))
                .collect::<Vec<_>>(),
            &test.labels,
        );
        let auc_boosted = roc_auc(
            &test
                .features
                .iter()
                .map(|f| boosted.score(f))
                .collect::<Vec<_>>(),
            &test.labels,
        );
        assert!(
            auc_boosted >= auc_single,
            "boosted AUC {auc_boosted} vs single stump {auc_single}"
        );
        assert!(boosted.ensemble_size() > single.ensemble_size());
    }

    #[test]
    fn handles_pure_noise_gracefully() {
        // Labels independent of features: boosting should stop early or stay
        // near chance, never panic.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(45);
        let features: Vec<Vec<f64>> = (0..200).map(|_| vec![rng.gen(), rng.gen()]).collect();
        let labels: Vec<bool> = (0..200).map(|_| rng.gen_bool(0.5)).collect();
        let data = TrainingSet::new(features, labels);
        let ab = AdaBoostClassifier::train(&data);
        let predictions: Vec<bool> = data.features.iter().map(|f| ab.predict(f)).collect();
        let acc = accuracy(&predictions, &data.labels);
        assert!(acc > 0.4, "should not be catastrophically wrong: {acc}");
    }

    #[test]
    fn metadata() {
        let train = synthetic_pair_data(100, 0.4, 46);
        let ab = AdaBoostClassifier::train(&train);
        assert_eq!(ab.name(), "AB");
        assert!(!ab.scores_are_probabilities());
        assert_eq!(ab.decision_threshold(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_set_panics() {
        AdaBoostClassifier::train(&TrainingSet::new(vec![], vec![]));
    }
}
