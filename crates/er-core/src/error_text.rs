//! Errors raised when parsing delimited record sources.

use std::fmt;

/// Errors from [`crate::io::parse_records`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header row has a different number of fields than the schema.
    HeaderMismatch {
        /// 1-based line number.
        line: usize,
        /// Number of fields in the schema.
        expected: usize,
        /// Number of fields found in the header.
        found: usize,
    },
    /// A header field name does not match the schema.
    HeaderFieldMismatch {
        /// The expected field name from the schema.
        expected: String,
        /// The name found in the header.
        found: String,
    },
    /// A numeric field failed to parse.
    InvalidNumber {
        /// 1-based line number.
        line: usize,
        /// The offending cell content.
        value: String,
    },
    /// A data row has more fields than the schema.
    TooManyFields {
        /// 1-based line number.
        line: usize,
        /// Number of fields in the schema.
        expected: usize,
        /// Number of fields found on the row.
        found: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::HeaderMismatch {
                line,
                expected,
                found,
            } => write!(
                f,
                "header on line {line} has {found} fields but the schema declares {expected}"
            ),
            ParseError::HeaderFieldMismatch { expected, found } => write!(
                f,
                "header field {found:?} does not match the schema field {expected:?}"
            ),
            ParseError::InvalidNumber { line, value } => {
                write!(f, "line {line}: cannot parse {value:?} as a number")
            }
            ParseError::TooManyFields {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line} has {found} fields but the schema declares only {expected}"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implements_error_and_display() {
        let err: Box<dyn std::error::Error> = Box::new(ParseError::HeaderFieldMismatch {
            expected: "name".into(),
            found: "title".into(),
        });
        assert!(err.to_string().contains("title"));
    }
}
