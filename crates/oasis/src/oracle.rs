//! Labelling oracles.
//!
//! The oracle abstracts the (expensive) source of ground-truth labels: a crowd
//! of human annotators, an expert, or — in simulation — the hidden true
//! resolution.  The paper models it as a randomised function
//! `Oracle : Z → {0, 1}` with response probabilities `p(1|z)` (Definition 4).
//!
//! Two crucial accounting rules from the paper's experiments (footnote 5):
//!
//! * Samplers draw **with replacement**, but a pair only consumes label budget
//!   the *first* time it is sent to the oracle — subsequent queries reuse the
//!   cached label.
//! * The deterministic oracle used in the experiments has
//!   `p(1|z) ∈ {0, 1}` (one label per pair in the ground truth).

use crate::error::{Error, Result};
use rand::Rng;

/// A source of ground-truth labels for record pairs, addressed by pool index.
pub trait Oracle {
    /// Query the label of item `index`.  Returns `true` for a match.
    ///
    /// Implementations must cache responses so that repeated queries of the
    /// same item do not consume additional label budget.
    fn query<R: Rng + ?Sized>(&mut self, index: usize, rng: &mut R) -> Result<bool>;

    /// Query a batch of items in order, returning one label per index.
    ///
    /// This is the batch path used behind the engine boundary, where label
    /// requests are shipped to remote/human annotators in groups.  The
    /// default implementation loops over [`query`](Oracle::query), so the
    /// footnote-5 budget accounting is preserved automatically: an index
    /// repeated within the batch (or already labelled earlier) is served
    /// from the cache and charges no additional budget.
    fn query_many<R: Rng + ?Sized>(&mut self, indices: &[usize], rng: &mut R) -> Result<Vec<bool>> {
        indices
            .iter()
            .map(|&index| self.query(index, rng))
            .collect()
    }

    /// Number of *distinct* items labelled so far (the consumed label budget).
    fn labels_consumed(&self) -> usize;

    /// Total number of queries issued, including repeats that hit the cache.
    fn queries_issued(&self) -> usize;

    /// Reset the budget accounting and the response cache.
    fn reset(&mut self);
}

/// A deterministic oracle backed by a known ground-truth vector.
///
/// This is the oracle used throughout the paper's experiments (Section 6.1.1):
/// each pair has exactly one true label, so `p(1|z) ∈ {0, 1}`.
#[derive(Debug, Clone)]
pub struct GroundTruthOracle {
    truth: Vec<bool>,
    queried: Vec<bool>,
    labels_consumed: usize,
    queries_issued: usize,
}

impl GroundTruthOracle {
    /// Create an oracle that answers according to `truth` (indexed like the
    /// pool).
    pub fn new(truth: Vec<bool>) -> Self {
        let queried = vec![false; truth.len()];
        GroundTruthOracle {
            truth,
            queried,
            labels_consumed: 0,
            queries_issued: 0,
        }
    }

    /// The hidden ground truth. Exposed for computing the target `F_α` when
    /// evaluating the evaluator itself; real deployments would not have this.
    pub fn ground_truth(&self) -> &[bool] {
        &self.truth
    }

    /// Number of items the oracle knows about.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// Whether the oracle knows about zero items.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Number of true matches in the ground truth.
    pub fn match_count(&self) -> usize {
        self.truth.iter().filter(|&&t| t).count()
    }

    /// Which items have been labelled so far (the budget bitmap), for
    /// checkpointing.  Restore with [`GroundTruthOracle::from_state`].
    pub fn queried_mask(&self) -> &[bool] {
        &self.queried
    }

    /// Charge the footnote-5 budget for `index` without issuing a query —
    /// used when a label for the item was obtained out of band (e.g. a
    /// client-supplied label behind the engine boundary) so budget
    /// accounting stays consistent while `queries_issued` keeps meaning
    /// "queries actually answered by this oracle".
    ///
    /// # Errors
    /// [`Error::OracleOutOfBounds`] if `index` is outside the truth.
    pub fn mark_queried(&mut self, index: usize) -> Result<()> {
        if index >= self.truth.len() {
            return Err(Error::OracleOutOfBounds {
                index,
                len: self.truth.len(),
            });
        }
        if !self.queried[index] {
            self.queried[index] = true;
            self.labels_consumed += 1;
        }
        Ok(())
    }

    /// Rebuild an oracle mid-run from checkpointed state: the ground truth,
    /// the already-labelled bitmap and the total query count.
    /// `labels_consumed` is recomputed from the bitmap, so the footnote-5
    /// budget accounting cannot be corrupted by a hand-edited checkpoint.
    ///
    /// # Errors
    /// [`Error::LengthMismatch`] if the bitmap does not cover the truth.
    pub fn from_state(truth: Vec<bool>, queried: Vec<bool>, queries_issued: usize) -> Result<Self> {
        if truth.len() != queried.len() {
            return Err(Error::InvalidParameter {
                name: "queried",
                message: format!(
                    "queried bitmap covers {} items but the truth has {}",
                    queried.len(),
                    truth.len()
                ),
            });
        }
        let labels_consumed = queried.iter().filter(|&&q| q).count();
        Ok(GroundTruthOracle {
            truth,
            queried,
            labels_consumed,
            queries_issued,
        })
    }
}

impl Oracle for GroundTruthOracle {
    fn query<R: Rng + ?Sized>(&mut self, index: usize, _rng: &mut R) -> Result<bool> {
        let label = *self.truth.get(index).ok_or(Error::OracleOutOfBounds {
            index,
            len: self.truth.len(),
        })?;
        self.queries_issued += 1;
        if !self.queried[index] {
            self.queried[index] = true;
            self.labels_consumed += 1;
        }
        Ok(label)
    }

    fn labels_consumed(&self) -> usize {
        self.labels_consumed
    }

    fn queries_issued(&self) -> usize {
        self.queries_issued
    }

    fn reset(&mut self) {
        self.queried.iter_mut().for_each(|q| *q = false);
        self.labels_consumed = 0;
        self.queries_issued = 0;
    }
}

/// A noisy oracle whose response for item `z` is `Bernoulli(p(1|z))`.
///
/// The first response for each item is drawn once and then cached, modelling a
/// single (possibly erroneous) annotation per pair.  This exercises the
/// general `p(1|z) ∈ [0, 1]` regime of Definition 4 that the deterministic
/// experiments do not.
#[derive(Debug, Clone)]
pub struct NoisyOracle {
    probabilities: Vec<f64>,
    cached: Vec<Option<bool>>,
    labels_consumed: usize,
    queries_issued: usize,
}

impl NoisyOracle {
    /// Create a noisy oracle with per-item match probabilities `p(1|z)`.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if any probability lies outside `[0, 1]`.
    pub fn new(probabilities: Vec<f64>) -> Result<Self> {
        if let Some(p) = probabilities
            .iter()
            .find(|p| !(0.0..=1.0).contains(*p) || p.is_nan())
        {
            return Err(Error::InvalidParameter {
                name: "probabilities",
                message: format!("oracle probability {p} outside [0, 1]"),
            });
        }
        let cached = vec![None; probabilities.len()];
        Ok(NoisyOracle {
            probabilities,
            cached,
            labels_consumed: 0,
            queries_issued: 0,
        })
    }

    /// Build a noisy oracle by flipping a deterministic ground truth with the
    /// given error rate: `p(1|z) = 1 − error_rate` for true matches and
    /// `error_rate` for true non-matches.
    pub fn from_ground_truth(truth: &[bool], error_rate: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&error_rate) || error_rate.is_nan() {
            return Err(Error::InvalidParameter {
                name: "error_rate",
                message: format!("error rate {error_rate} outside [0, 1]"),
            });
        }
        let probabilities = truth
            .iter()
            .map(|&t| if t { 1.0 - error_rate } else { error_rate })
            .collect();
        Self::new(probabilities)
    }

    /// The per-item match probabilities `p(1|z)`.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }
}

impl Oracle for NoisyOracle {
    fn query<R: Rng + ?Sized>(&mut self, index: usize, rng: &mut R) -> Result<bool> {
        let p = *self
            .probabilities
            .get(index)
            .ok_or(Error::OracleOutOfBounds {
                index,
                len: self.probabilities.len(),
            })?;
        self.queries_issued += 1;
        if let Some(label) = self.cached[index] {
            return Ok(label);
        }
        let label = rng.gen_bool(p);
        self.cached[index] = Some(label);
        self.labels_consumed += 1;
        Ok(label)
    }

    fn labels_consumed(&self) -> usize {
        self.labels_consumed
    }

    fn queries_issued(&self) -> usize {
        self.queries_issued
    }

    fn reset(&mut self) {
        self.cached.iter_mut().for_each(|c| *c = None);
        self.labels_consumed = 0;
        self.queries_issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ground_truth_oracle_answers_correctly() {
        let mut oracle = GroundTruthOracle::new(vec![true, false, true]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(oracle.query(0, &mut rng).unwrap());
        assert!(!oracle.query(1, &mut rng).unwrap());
        assert!(oracle.query(2, &mut rng).unwrap());
        assert_eq!(oracle.match_count(), 2);
        assert_eq!(oracle.len(), 3);
        assert!(!oracle.is_empty());
    }

    #[test]
    fn repeat_queries_do_not_consume_budget() {
        let mut oracle = GroundTruthOracle::new(vec![true, false, true, false]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            oracle.query(2, &mut rng).unwrap();
        }
        oracle.query(0, &mut rng).unwrap();
        assert_eq!(oracle.labels_consumed(), 2);
        assert_eq!(oracle.queries_issued(), 11);
    }

    #[test]
    fn reset_clears_budget() {
        let mut oracle = GroundTruthOracle::new(vec![true, false]);
        let mut rng = StdRng::seed_from_u64(1);
        oracle.query(0, &mut rng).unwrap();
        oracle.reset();
        assert_eq!(oracle.labels_consumed(), 0);
        assert_eq!(oracle.queries_issued(), 0);
        oracle.query(0, &mut rng).unwrap();
        assert_eq!(oracle.labels_consumed(), 1);
    }

    #[test]
    fn query_many_returns_labels_in_order() {
        let mut oracle = GroundTruthOracle::new(vec![true, false, true, false]);
        let mut rng = StdRng::seed_from_u64(2);
        let labels = oracle.query_many(&[3, 0, 2], &mut rng).unwrap();
        assert_eq!(labels, vec![false, true, true]);
        assert_eq!(oracle.labels_consumed(), 3);
        assert_eq!(oracle.queries_issued(), 3);
    }

    #[test]
    fn batched_queries_never_double_charge_the_budget() {
        // Footnote 5: an item charges budget only on its first query, whether
        // the repeat happens within one batch, across batches, or mixed with
        // single queries.
        let mut oracle = GroundTruthOracle::new(vec![true, false, true, false, true]);
        let mut rng = StdRng::seed_from_u64(2);
        oracle.query_many(&[1, 1, 1, 4], &mut rng).unwrap();
        assert_eq!(oracle.labels_consumed(), 2, "repeats inside one batch");
        oracle.query_many(&[4, 1, 0], &mut rng).unwrap();
        assert_eq!(oracle.labels_consumed(), 3, "repeats across batches");
        oracle.query(0, &mut rng).unwrap();
        oracle.query_many(&[0, 2], &mut rng).unwrap();
        assert_eq!(oracle.labels_consumed(), 4, "mixed single/batch repeats");
        assert_eq!(oracle.queries_issued(), 10);
    }

    #[test]
    fn noisy_batched_queries_cache_and_charge_once() {
        let mut oracle = NoisyOracle::new(vec![0.5; 6]).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let first = oracle.query_many(&[2, 2, 5, 2], &mut rng).unwrap();
        assert_eq!(first[0], first[1]);
        assert_eq!(first[1], first[3]);
        assert_eq!(oracle.labels_consumed(), 2);
        let again = oracle.query_many(&[2, 5], &mut rng).unwrap();
        assert_eq!(again, vec![first[0], first[2]]);
        assert_eq!(oracle.labels_consumed(), 2);
    }

    #[test]
    fn query_many_propagates_out_of_bounds() {
        let mut oracle = GroundTruthOracle::new(vec![true]);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(oracle.query_many(&[0, 9], &mut rng).is_err());
    }

    #[test]
    fn ground_truth_state_round_trip() {
        let mut oracle = GroundTruthOracle::new(vec![true, false, true]);
        let mut rng = StdRng::seed_from_u64(3);
        oracle.query(2, &mut rng).unwrap();
        oracle.query(2, &mut rng).unwrap();
        let restored = GroundTruthOracle::from_state(
            oracle.ground_truth().to_vec(),
            oracle.queried_mask().to_vec(),
            oracle.queries_issued(),
        )
        .unwrap();
        assert_eq!(restored.labels_consumed(), 1);
        assert_eq!(restored.queries_issued(), 2);
        assert_eq!(restored.queried_mask(), oracle.queried_mask());
        assert!(GroundTruthOracle::from_state(vec![true], vec![], 0).is_err());
    }

    #[test]
    fn out_of_bounds_query_errors() {
        let mut oracle = GroundTruthOracle::new(vec![true]);
        let mut rng = StdRng::seed_from_u64(1);
        let err = oracle.query(5, &mut rng).unwrap_err();
        assert_eq!(err, Error::OracleOutOfBounds { index: 5, len: 1 });
    }

    #[test]
    fn noisy_oracle_rejects_bad_probabilities() {
        assert!(NoisyOracle::new(vec![0.5, 1.2]).is_err());
        assert!(NoisyOracle::new(vec![f64::NAN]).is_err());
        assert!(NoisyOracle::from_ground_truth(&[true], 1.5).is_err());
    }

    #[test]
    fn noisy_oracle_caches_first_response() {
        let mut oracle = NoisyOracle::new(vec![0.5; 4]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let first = oracle.query(1, &mut rng).unwrap();
        for _ in 0..20 {
            assert_eq!(oracle.query(1, &mut rng).unwrap(), first);
        }
        assert_eq!(oracle.labels_consumed(), 1);
        assert_eq!(oracle.queries_issued(), 21);
    }

    #[test]
    fn noisy_oracle_deterministic_extremes() {
        let mut oracle = NoisyOracle::new(vec![1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(oracle.query(0, &mut rng).unwrap());
        assert!(!oracle.query(1, &mut rng).unwrap());
    }

    #[test]
    fn noisy_oracle_from_ground_truth_matches_error_rate_statistically() {
        let truth = vec![true; 2000];
        let mut oracle = NoisyOracle::from_ground_truth(&truth, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut wrong = 0usize;
        for i in 0..truth.len() {
            if !oracle.query(i, &mut rng).unwrap() {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / truth.len() as f64;
        assert!((rate - 0.1).abs() < 0.03, "observed error rate {rate}");
    }

    #[test]
    fn noisy_oracle_exposes_probabilities_and_resets() {
        let mut oracle = NoisyOracle::new(vec![0.25, 0.75]).unwrap();
        assert_eq!(oracle.probabilities(), &[0.25, 0.75]);
        let mut rng = StdRng::seed_from_u64(5);
        oracle.query(0, &mut rng).unwrap();
        oracle.reset();
        assert_eq!(oracle.labels_consumed(), 0);
    }
}
