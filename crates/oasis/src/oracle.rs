//! Labelling oracles.
//!
//! The oracle abstracts the (expensive) source of ground-truth labels: a crowd
//! of human annotators, an expert, or — in simulation — the hidden true
//! resolution.  The paper models it as a randomised function
//! `Oracle : Z → {0, 1}` with response probabilities `p(1|z)` (Definition 4).
//!
//! Two crucial accounting rules from the paper's experiments (footnote 5):
//!
//! * Samplers draw **with replacement**, but a pair only consumes label budget
//!   the *first* time it is sent to the oracle — subsequent queries reuse the
//!   cached label.
//! * The deterministic oracle used in the experiments has
//!   `p(1|z) ∈ {0, 1}` (one label per pair in the ground truth).

use crate::error::{Error, Result};
use rand::Rng;

/// A source of ground-truth labels for record pairs, addressed by pool index.
pub trait Oracle {
    /// Query the label of item `index`.  Returns `true` for a match.
    ///
    /// Implementations must cache responses so that repeated queries of the
    /// same item do not consume additional label budget.
    fn query<R: Rng + ?Sized>(&mut self, index: usize, rng: &mut R) -> Result<bool>;

    /// Number of *distinct* items labelled so far (the consumed label budget).
    fn labels_consumed(&self) -> usize;

    /// Total number of queries issued, including repeats that hit the cache.
    fn queries_issued(&self) -> usize;

    /// Reset the budget accounting and the response cache.
    fn reset(&mut self);
}

/// A deterministic oracle backed by a known ground-truth vector.
///
/// This is the oracle used throughout the paper's experiments (Section 6.1.1):
/// each pair has exactly one true label, so `p(1|z) ∈ {0, 1}`.
#[derive(Debug, Clone)]
pub struct GroundTruthOracle {
    truth: Vec<bool>,
    queried: Vec<bool>,
    labels_consumed: usize,
    queries_issued: usize,
}

impl GroundTruthOracle {
    /// Create an oracle that answers according to `truth` (indexed like the
    /// pool).
    pub fn new(truth: Vec<bool>) -> Self {
        let queried = vec![false; truth.len()];
        GroundTruthOracle {
            truth,
            queried,
            labels_consumed: 0,
            queries_issued: 0,
        }
    }

    /// The hidden ground truth. Exposed for computing the target `F_α` when
    /// evaluating the evaluator itself; real deployments would not have this.
    pub fn ground_truth(&self) -> &[bool] {
        &self.truth
    }

    /// Number of items the oracle knows about.
    pub fn len(&self) -> usize {
        self.truth.len()
    }

    /// Whether the oracle knows about zero items.
    pub fn is_empty(&self) -> bool {
        self.truth.is_empty()
    }

    /// Number of true matches in the ground truth.
    pub fn match_count(&self) -> usize {
        self.truth.iter().filter(|&&t| t).count()
    }
}

impl Oracle for GroundTruthOracle {
    fn query<R: Rng + ?Sized>(&mut self, index: usize, _rng: &mut R) -> Result<bool> {
        let label = *self.truth.get(index).ok_or(Error::OracleOutOfBounds {
            index,
            len: self.truth.len(),
        })?;
        self.queries_issued += 1;
        if !self.queried[index] {
            self.queried[index] = true;
            self.labels_consumed += 1;
        }
        Ok(label)
    }

    fn labels_consumed(&self) -> usize {
        self.labels_consumed
    }

    fn queries_issued(&self) -> usize {
        self.queries_issued
    }

    fn reset(&mut self) {
        self.queried.iter_mut().for_each(|q| *q = false);
        self.labels_consumed = 0;
        self.queries_issued = 0;
    }
}

/// A noisy oracle whose response for item `z` is `Bernoulli(p(1|z))`.
///
/// The first response for each item is drawn once and then cached, modelling a
/// single (possibly erroneous) annotation per pair.  This exercises the
/// general `p(1|z) ∈ [0, 1]` regime of Definition 4 that the deterministic
/// experiments do not.
#[derive(Debug, Clone)]
pub struct NoisyOracle {
    probabilities: Vec<f64>,
    cached: Vec<Option<bool>>,
    labels_consumed: usize,
    queries_issued: usize,
}

impl NoisyOracle {
    /// Create a noisy oracle with per-item match probabilities `p(1|z)`.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] if any probability lies outside `[0, 1]`.
    pub fn new(probabilities: Vec<f64>) -> Result<Self> {
        if let Some(p) = probabilities
            .iter()
            .find(|p| !(0.0..=1.0).contains(*p) || p.is_nan())
        {
            return Err(Error::InvalidParameter {
                name: "probabilities",
                message: format!("oracle probability {p} outside [0, 1]"),
            });
        }
        let cached = vec![None; probabilities.len()];
        Ok(NoisyOracle {
            probabilities,
            cached,
            labels_consumed: 0,
            queries_issued: 0,
        })
    }

    /// Build a noisy oracle by flipping a deterministic ground truth with the
    /// given error rate: `p(1|z) = 1 − error_rate` for true matches and
    /// `error_rate` for true non-matches.
    pub fn from_ground_truth(truth: &[bool], error_rate: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&error_rate) || error_rate.is_nan() {
            return Err(Error::InvalidParameter {
                name: "error_rate",
                message: format!("error rate {error_rate} outside [0, 1]"),
            });
        }
        let probabilities = truth
            .iter()
            .map(|&t| if t { 1.0 - error_rate } else { error_rate })
            .collect();
        Self::new(probabilities)
    }

    /// The per-item match probabilities `p(1|z)`.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }
}

impl Oracle for NoisyOracle {
    fn query<R: Rng + ?Sized>(&mut self, index: usize, rng: &mut R) -> Result<bool> {
        let p = *self
            .probabilities
            .get(index)
            .ok_or(Error::OracleOutOfBounds {
                index,
                len: self.probabilities.len(),
            })?;
        self.queries_issued += 1;
        if let Some(label) = self.cached[index] {
            return Ok(label);
        }
        let label = rng.gen_bool(p);
        self.cached[index] = Some(label);
        self.labels_consumed += 1;
        Ok(label)
    }

    fn labels_consumed(&self) -> usize {
        self.labels_consumed
    }

    fn queries_issued(&self) -> usize {
        self.queries_issued
    }

    fn reset(&mut self) {
        self.cached.iter_mut().for_each(|c| *c = None);
        self.labels_consumed = 0;
        self.queries_issued = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ground_truth_oracle_answers_correctly() {
        let mut oracle = GroundTruthOracle::new(vec![true, false, true]);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(oracle.query(0, &mut rng).unwrap());
        assert!(!oracle.query(1, &mut rng).unwrap());
        assert!(oracle.query(2, &mut rng).unwrap());
        assert_eq!(oracle.match_count(), 2);
        assert_eq!(oracle.len(), 3);
        assert!(!oracle.is_empty());
    }

    #[test]
    fn repeat_queries_do_not_consume_budget() {
        let mut oracle = GroundTruthOracle::new(vec![true, false, true, false]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            oracle.query(2, &mut rng).unwrap();
        }
        oracle.query(0, &mut rng).unwrap();
        assert_eq!(oracle.labels_consumed(), 2);
        assert_eq!(oracle.queries_issued(), 11);
    }

    #[test]
    fn reset_clears_budget() {
        let mut oracle = GroundTruthOracle::new(vec![true, false]);
        let mut rng = StdRng::seed_from_u64(1);
        oracle.query(0, &mut rng).unwrap();
        oracle.reset();
        assert_eq!(oracle.labels_consumed(), 0);
        assert_eq!(oracle.queries_issued(), 0);
        oracle.query(0, &mut rng).unwrap();
        assert_eq!(oracle.labels_consumed(), 1);
    }

    #[test]
    fn out_of_bounds_query_errors() {
        let mut oracle = GroundTruthOracle::new(vec![true]);
        let mut rng = StdRng::seed_from_u64(1);
        let err = oracle.query(5, &mut rng).unwrap_err();
        assert_eq!(err, Error::OracleOutOfBounds { index: 5, len: 1 });
    }

    #[test]
    fn noisy_oracle_rejects_bad_probabilities() {
        assert!(NoisyOracle::new(vec![0.5, 1.2]).is_err());
        assert!(NoisyOracle::new(vec![f64::NAN]).is_err());
        assert!(NoisyOracle::from_ground_truth(&[true], 1.5).is_err());
    }

    #[test]
    fn noisy_oracle_caches_first_response() {
        let mut oracle = NoisyOracle::new(vec![0.5; 4]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let first = oracle.query(1, &mut rng).unwrap();
        for _ in 0..20 {
            assert_eq!(oracle.query(1, &mut rng).unwrap(), first);
        }
        assert_eq!(oracle.labels_consumed(), 1);
        assert_eq!(oracle.queries_issued(), 21);
    }

    #[test]
    fn noisy_oracle_deterministic_extremes() {
        let mut oracle = NoisyOracle::new(vec![1.0, 0.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert!(oracle.query(0, &mut rng).unwrap());
        assert!(!oracle.query(1, &mut rng).unwrap());
    }

    #[test]
    fn noisy_oracle_from_ground_truth_matches_error_rate_statistically() {
        let truth = vec![true; 2000];
        let mut oracle = NoisyOracle::from_ground_truth(&truth, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut wrong = 0usize;
        for i in 0..truth.len() {
            if !oracle.query(i, &mut rng).unwrap() {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / truth.len() as f64;
        assert!((rate - 0.1).abs() < 0.03, "observed error rate {rate}");
    }

    #[test]
    fn noisy_oracle_exposes_probabilities_and_resets() {
        let mut oracle = NoisyOracle::new(vec![0.25, 0.75]).unwrap();
        assert_eq!(oracle.probabilities(), &[0.25, 0.75]);
        let mut rng = StdRng::seed_from_u64(5);
        oracle.query(0, &mut rng).unwrap();
        oracle.reset();
        assert_eq!(oracle.labels_consumed(), 0);
    }
}
