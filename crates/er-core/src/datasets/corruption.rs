//! Attribute corruption: generating a noisy second description of an entity.
//!
//! When a matched record appears in the second source it is not an exact copy:
//! names carry typos, tokens are dropped or abbreviated, numeric attributes
//! drift, and fields go missing.  The corruption intensity controls how hard
//! the matching problem is — and therefore the classifier operating point,
//! which is what the paper's Table 2 pools differ in.

use crate::record::FieldValue;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Corruption intensity parameters, all probabilities per field or per token.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionConfig {
    /// Probability of introducing a character-level typo per token.
    pub typo_probability: f64,
    /// Probability of dropping each token.
    pub token_drop_probability: f64,
    /// Probability of abbreviating each token to its first letter.
    pub abbreviation_probability: f64,
    /// Probability that an entire field is missing in the corrupted record.
    pub missing_field_probability: f64,
    /// Relative noise applied to numeric fields (e.g. 0.1 = ±10%).
    pub numeric_noise: f64,
}

impl CorruptionConfig {
    /// Light corruption: matched records remain easy to identify.
    pub fn light() -> Self {
        CorruptionConfig {
            typo_probability: 0.03,
            token_drop_probability: 0.03,
            abbreviation_probability: 0.02,
            missing_field_probability: 0.01,
            numeric_noise: 0.02,
        }
    }

    /// Moderate corruption.
    pub fn moderate() -> Self {
        CorruptionConfig {
            typo_probability: 0.12,
            token_drop_probability: 0.12,
            abbreviation_probability: 0.08,
            missing_field_probability: 0.05,
            numeric_noise: 0.10,
        }
    }

    /// Heavy corruption: many matches become genuinely ambiguous, which drives
    /// classifier recall down (the Abt-Buy regime).
    pub fn heavy() -> Self {
        CorruptionConfig {
            typo_probability: 0.25,
            token_drop_probability: 0.30,
            abbreviation_probability: 0.15,
            missing_field_probability: 0.12,
            numeric_noise: 0.25,
        }
    }

    /// Linear interpolation between [`light`](Self::light) (0.0) and
    /// [`heavy`](Self::heavy) (1.0).
    pub fn with_intensity(intensity: f64) -> Self {
        let t = intensity.clamp(0.0, 1.0);
        let light = Self::light();
        let heavy = Self::heavy();
        // Convex combination written so t = 0 and t = 1 reproduce the end
        // points exactly (no floating-point drift).
        let mix = |a: f64, b: f64| a * (1.0 - t) + b * t;
        CorruptionConfig {
            typo_probability: mix(light.typo_probability, heavy.typo_probability),
            token_drop_probability: mix(light.token_drop_probability, heavy.token_drop_probability),
            abbreviation_probability: mix(
                light.abbreviation_probability,
                heavy.abbreviation_probability,
            ),
            missing_field_probability: mix(
                light.missing_field_probability,
                heavy.missing_field_probability,
            ),
            numeric_noise: mix(light.numeric_noise, heavy.numeric_noise),
        }
    }
}

/// Introduce a single random character typo (substitution, deletion or
/// transposition) into a token.
fn corrupt_token<R: Rng + ?Sized>(token: &str, rng: &mut R) -> String {
    let chars: Vec<char> = token.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let position = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    match rng.gen_range(0..3) {
        0 => {
            // substitution with a random lowercase letter
            out[position] = (b'a' + rng.gen_range(0..26u8)) as char;
        }
        1 => {
            // deletion
            out.remove(position);
        }
        _ => {
            // transposition with the next character (if any)
            if position + 1 < out.len() {
                out.swap(position, position + 1);
            } else if out.len() >= 2 {
                out.swap(position, position - 1);
            }
        }
    }
    out.into_iter().collect()
}

/// Corrupt a text value token by token.
pub fn corrupt_text<R: Rng + ?Sized>(text: &str, config: &CorruptionConfig, rng: &mut R) -> String {
    let mut tokens: Vec<String> = Vec::new();
    for token in text.split_whitespace() {
        if rng.gen_bool(config.token_drop_probability) {
            continue;
        }
        let mut token = token.to_string();
        if rng.gen_bool(config.abbreviation_probability) {
            token = token.chars().take(1).collect();
        } else if rng.gen_bool(config.typo_probability) {
            token = corrupt_token(&token, rng);
        }
        if !token.is_empty() {
            tokens.push(token);
        }
    }
    if tokens.is_empty() {
        // Never corrupt a value into the empty string; keep the first token.
        text.split_whitespace()
            .next()
            .unwrap_or_default()
            .to_string()
    } else {
        tokens.join(" ")
    }
}

/// Produce the corrupted view of an entity's field values for the second
/// source.
pub fn corrupt_values<R: Rng + ?Sized>(
    values: &[FieldValue],
    config: &CorruptionConfig,
    rng: &mut R,
) -> Vec<FieldValue> {
    values
        .iter()
        .map(|value| {
            if rng.gen_bool(config.missing_field_probability) {
                return FieldValue::Missing;
            }
            match value {
                FieldValue::Text(s) => FieldValue::Text(corrupt_text(s, config, rng)),
                FieldValue::Number(x) => {
                    let noise = 1.0 + config.numeric_noise * (rng.gen::<f64>() * 2.0 - 1.0);
                    FieldValue::Number(x * noise)
                }
                FieldValue::Missing => FieldValue::Missing,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::ngram_jaccard;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn intensity_interpolates_between_light_and_heavy() {
        let light = CorruptionConfig::with_intensity(0.0);
        let heavy = CorruptionConfig::with_intensity(1.0);
        let mid = CorruptionConfig::with_intensity(0.5);
        assert_eq!(light, CorruptionConfig::light());
        assert_eq!(heavy, CorruptionConfig::heavy());
        assert!(mid.typo_probability > light.typo_probability);
        assert!(mid.typo_probability < heavy.typo_probability);
        // Out-of-range intensities clamp.
        assert_eq!(CorruptionConfig::with_intensity(-1.0), light);
        assert_eq!(CorruptionConfig::with_intensity(2.0), heavy);
    }

    #[test]
    fn light_corruption_preserves_most_similarity() {
        let mut rng = StdRng::seed_from_u64(1);
        let original = "acme digital camera 404 professional studio edition";
        let mut total = 0.0;
        let runs = 50;
        for _ in 0..runs {
            let corrupted = corrupt_text(original, &CorruptionConfig::light(), &mut rng);
            total += ngram_jaccard(original, &corrupted, 3);
        }
        assert!(
            total / runs as f64 > 0.8,
            "mean similarity {}",
            total / runs as f64
        );
    }

    #[test]
    fn heavy_corruption_degrades_similarity_more_than_light() {
        let mut rng = StdRng::seed_from_u64(2);
        let original = "acme digital camera 404 professional studio edition";
        let mut light_total = 0.0;
        let mut heavy_total = 0.0;
        let runs = 60;
        for _ in 0..runs {
            light_total += ngram_jaccard(
                original,
                &corrupt_text(original, &CorruptionConfig::light(), &mut rng),
                3,
            );
            heavy_total += ngram_jaccard(
                original,
                &corrupt_text(original, &CorruptionConfig::heavy(), &mut rng),
                3,
            );
        }
        assert!(
            light_total > heavy_total,
            "light {light_total} vs heavy {heavy_total}"
        );
    }

    #[test]
    fn corrupt_text_never_returns_empty_for_nonempty_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = CorruptionConfig {
            token_drop_probability: 1.0,
            ..CorruptionConfig::heavy()
        };
        let corrupted = corrupt_text("single", &config, &mut rng);
        assert!(!corrupted.is_empty());
    }

    #[test]
    fn corrupt_values_respects_field_kinds() {
        let mut rng = StdRng::seed_from_u64(4);
        let values = vec![
            FieldValue::Text("golden dragon bistro".into()),
            FieldValue::Number(100.0),
            FieldValue::Missing,
        ];
        let config = CorruptionConfig {
            missing_field_probability: 0.0,
            ..CorruptionConfig::moderate()
        };
        let corrupted = corrupt_values(&values, &config, &mut rng);
        assert!(corrupted[0].as_text().is_some());
        let price = corrupted[1].as_number().unwrap();
        assert!((price - 100.0).abs() <= 10.0 + 1e-9, "price {price}");
        assert!(corrupted[2].is_missing());
    }

    #[test]
    fn missing_field_probability_one_blanks_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let values = vec![FieldValue::Text("abc".into()), FieldValue::Number(1.0)];
        let config = CorruptionConfig {
            missing_field_probability: 1.0,
            ..CorruptionConfig::light()
        };
        let corrupted = corrupt_values(&values, &config, &mut rng);
        assert!(corrupted.iter().all(|v| v.is_missing()));
    }

    #[test]
    fn corrupt_token_changes_or_preserves_length_sensibly() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            let out = corrupt_token("camera", &mut rng);
            assert!(!out.is_empty());
            assert!(out.len() >= 5 && out.len() <= 6);
        }
        assert_eq!(corrupt_token("", &mut rng), "");
    }
}
