//! # experiments — regenerating the OASIS paper's tables and figures
//!
//! Each table and figure of the paper's evaluation (Section 6) has a module
//! here that builds the required pools, runs the sampling methods, and returns
//! a structured result that the corresponding binary (`src/bin/<name>.rs`)
//! prints as a plain-text table.  The Criterion benches in `crates/bench`
//! reuse the same entry points at reduced scale.
//!
//! | Module | Paper content |
//! |---|---|
//! | [`table1`] | Dataset inventory (size, imbalance, #matches) |
//! | [`table2`] | Pools + linear-SVM operating points |
//! | [`table3`] | CPU time per run / per iteration on cora |
//! | [`figure1`] | CSF stratum sizes and mean scores (Abt-Buy) |
//! | [`figure2`] | Absolute error & std. dev. vs label budget, all pools |
//! | [`figure3`] | Calibrated vs uncalibrated scores (IS & OASIS) |
//! | [`figure4`] | Convergence of F̂, π̂, v̂ and KL divergence |
//! | [`figure5`] | Error after a fixed budget for five classifiers |
//! | [`engine_parity`] | `oasis-engine` sessions vs library runs (bitwise) |
//!
//! Shared infrastructure: [`methods`] (the sampling methods under
//! comparison), [`pools`] (pool construction from dataset profiles),
//! [`curves`] (repeated-run error curves), [`report`] (plain-text tables).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod curves;
pub mod engine_parity;
pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod methods;
pub mod pools;
pub mod report;
pub mod table1;
pub mod table2;
pub mod table3;

/// Parse a simple `key=value` command-line option of the form `--scale=0.1`,
/// returning `default` when absent or malformed.
pub fn parse_arg<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    let prefix = format!("--{key}=");
    for arg in args {
        if let Some(value) = arg.strip_prefix(&prefix) {
            if let Ok(parsed) = value.parse::<T>() {
                return parsed;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_arg_reads_key_value_pairs() {
        let args: Vec<String> = vec!["--scale=0.25".into(), "--repeats=17".into()];
        assert_eq!(parse_arg(&args, "scale", 1.0f64), 0.25);
        assert_eq!(parse_arg(&args, "repeats", 3usize), 17);
        assert_eq!(parse_arg(&args, "seed", 42u64), 42);
        // Malformed values fall back to the default.
        let bad: Vec<String> = vec!["--scale=abc".into()];
        assert_eq!(parse_arg(&bad, "scale", 0.5f64), 0.5);
    }
}
