//! Label-efficient samplers for ER evaluation.
//!
//! All samplers implement two layered traits:
//!
//! * [`InteractiveSampler`] — the propose/apply-label *state machine*.  A
//!   driver asks for a [`Proposal`] (or a batch), hands it to whatever
//!   produces labels (an in-process oracle, a human annotation queue, a
//!   remote `oasis-serve` client), and feeds each label back through
//!   [`apply_label`](InteractiveSampler::apply_label).  Every sampler —
//!   adaptive or not — speaks this interface, which is what lets sessions,
//!   checkpoints and the wire protocol stay method-agnostic.
//! * [`Sampler`] — the classic in-process loop.  Its
//!   [`step`](Sampler::step) is a *provided* method that runs the state
//!   machine without suspension (propose → query the oracle → apply), so the
//!   two code paths cannot drift apart: with the same seed, a propose/apply
//!   driver and a `step` loop produce bit-identical draws and estimates.
//!
//! # The interactive state-machine contract
//!
//! * **Proposals are self-contained.**  A [`Proposal`] locks in the item,
//!   the prediction and the importance weight at proposal time; the weight
//!   depends only on the instrumental distribution used for the draw, never
//!   on the eventual label.
//! * **Pending proposals do not constrain new ones.**  Any number of
//!   proposals may be outstanding; consecutive proposals without intervening
//!   labels draw from the same (frozen) distribution, because a sampler only
//!   adapts on [`apply_label`](InteractiveSampler::apply_label).  This is
//!   what makes batched annotation sound, and what
//!   [`propose_batch`](InteractiveSampler::propose_batch) exploits to pay
//!   any per-refresh cost once per batch.
//! * **Labels may arrive late, batched, or out of order.**  Applying the
//!   same set of (proposal, label) pairs in a different order may reach a
//!   different (equally valid) posterior for adaptive samplers, so drivers
//!   that need bit-reproducibility apply labels in ascending proposal order
//!   — the `oasis-engine` session layer does exactly that.
//! * **Draws are with replacement.**  The same item may be proposed many
//!   times; the *label budget* (distinct items labelled, paper footnote 5)
//!   is tracked by the oracle or the driving session, not the sampler.
//!
//! Implemented samplers, matching the paper's experimental comparison
//! (Section 6.2):
//!
//! | Sampler | Method tag | Proposal | Estimator | Adaptive |
//! |---|---|---|---|---|
//! | [`PassiveSampler`] | `passive` | uniform over the pool | plain F-measure (Eqn. 1) | no |
//! | [`StratifiedSampler`] | `stratified` | proportional to stratum size | stratified F-measure | no |
//! | [`ImportanceSampler`] | `importance` | static pointwise optimal (scores as probabilities) | AIS (Eqn. 3) | no |
//! | [`OasisSampler`] | `oasis` | ε-greedy stratified optimal, refit each iteration | AIS (Eqn. 3) | yes |
//!
//! [`AnySampler`] dispatches over the concrete types behind one value, and
//! the method-tagged [`SamplerState`] serializes any of them for
//! exact-resume checkpointing.
//!
//! On top of the concrete methods sits the sharding layer ([`ShardedPool`] /
//! [`ShardedSampler`]): a partition of the pool into K contiguous shards,
//! one inner sampler per shard, exposed as a single `InteractiveSampler`
//! whose estimate is the *exact* merged AIS estimate.  Shard selection runs
//! on an incremental [`FenwickTree`] so the per-label proposal cost is
//! O(log K) instead of an O(N) CDF rebuild.

mod any;
mod fenwick;
mod importance;
mod oasis_sampler;
mod passive;
mod sharding;
mod state;
mod stratified;

pub use any::AnySampler;
pub use fenwick::FenwickTree;
pub use importance::ImportanceSampler;
pub use oasis_sampler::{OasisConfig, OasisSampler, Proposal, StratifierChoice};
pub use passive::PassiveSampler;
pub use sharding::{ShardedPool, ShardedSampler};
pub use state::{
    EstimatorState, ImportanceState, OasisState, PassiveState, SamplerMethod, SamplerState,
    ShardedState, StratifiedState, TrackerState,
};
pub use stratified::StratifiedSampler;

use crate::error::Result;
use crate::estimator::{AisEstimator, Estimate};
use crate::oracle::Oracle;
use crate::pool::ScoredPool;
use rand::Rng;

/// Diagnostics for an unstratified, AIS-estimated sampler: a single stratum
/// holds every label and all the instrumental mass, and weight health comes
/// straight off the estimator.  Shared by [`PassiveSampler`] and
/// [`ImportanceSampler`].
pub(crate) fn unstratified_diagnostics(
    method: SamplerMethod,
    estimator: &AisEstimator,
) -> SamplerDiagnostics {
    SamplerDiagnostics {
        method,
        iterations: estimator.iterations(),
        effective_sample_size: estimator.effective_sample_size(),
        normalized_weight_variance: estimator.normalized_weight_variance(),
        stratum_labels: vec![estimator.iterations() as f64],
        instrumental: vec![1.0],
        cdf_rebuilds: 0,
    }
}

/// Ground-truth-free diagnostics of a sampler run, reportable live from any
/// method — unlike the oracle-referenced tools in [`crate::diagnostics`],
/// nothing here needs the hidden truth, so a serving layer can export these
/// for dashboards while labels are still being collected.
///
/// Captured by [`InteractiveSampler::diagnostics`] for every sampler, so
/// drivers (sessions, the wire protocol) stay method-agnostic: static
/// samplers report degenerate-but-honest values (unit-weight ESS equals the
/// iteration count; unstratified samplers report a single stratum holding
/// all mass) rather than being excluded.
///
/// All values are pure functions of the sampler's serialized state, so
/// diagnostics are bit-stable across a checkpoint/restore round trip.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerDiagnostics {
    /// The reporting sampler's method tag.
    pub method: SamplerMethod,
    /// Sampling iterations folded into the estimator (label applications,
    /// not distinct items).
    pub iterations: usize,
    /// Kish effective sample size of the importance weights,
    /// `(Σw)²/Σw²` — the Delyon & Portier-style convergence proxy.  In
    /// `(0, iterations]` once a label has been applied; `None` before any
    /// observation or when the weight history predates its tracking.
    pub effective_sample_size: Option<f64>,
    /// Normalized weight variance `Var(w)/mean(w)²` (zero under unit
    /// weights); `None` exactly when `effective_sample_size` is.
    pub normalized_weight_variance: Option<f64>,
    /// Labels applied per stratum so far (one entry per stratum; a single
    /// entry holding every label for unstratified samplers).
    pub stratum_labels: Vec<f64>,
    /// The *current* instrumental distribution over the same strata — what
    /// the sampler would draw from next.  Comparing against the label
    /// allocation shows how far the realized allocation lags the adaptive
    /// target.
    pub instrumental: Vec<f64>,
    /// How many times an instrumental-distribution CDF has been refit
    /// (OASIS's cache-miss count; 0 forever for static methods).
    pub cdf_rebuilds: u64,
}

/// The record of a single sampling iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Index of the sampled pool item.
    pub item: usize,
    /// The ER system's predicted label for the item.
    pub prediction: bool,
    /// The oracle's label for the item.
    pub label: bool,
    /// The importance weight applied to the observation (1 for unbiased
    /// samplers).
    pub weight: f64,
}

/// The propose/apply-label state machine every sampler exposes.
///
/// See the [module docs](self) for the full contract.  Implementors only
/// provide the two halves of an iteration ([`propose`](Self::propose) and
/// [`apply_label`](Self::apply_label)) plus estimate/state plumbing; the
/// batch forms have defaults that are bit-identical to repeated single
/// calls, and [`Sampler::step`] rides on the two halves.
pub trait InteractiveSampler {
    /// The first half of an iteration: draw one item from the sampler's
    /// current instrumental distribution and lock in its importance weight.
    /// The sampler then waits (conceptually) for
    /// [`apply_label`](Self::apply_label); no oracle is consulted.
    fn propose<R: Rng + ?Sized>(&mut self, pool: &ScoredPool, rng: &mut R) -> Proposal;

    /// Draw `count` proposals.  Because no labels can intervene inside the
    /// batch, the instrumental distribution is identical for every draw, so
    /// this produces the same proposals (bit-for-bit, same RNG stream) as
    /// calling [`propose`](Self::propose) `count` times; adaptive samplers
    /// override it to pay their per-refresh cost once per batch.
    fn propose_batch<R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        rng: &mut R,
        count: usize,
    ) -> Vec<Proposal> {
        (0..count).map(|_| self.propose(pool, rng)).collect()
    }

    /// The second half of an iteration: fold an oracle label for a pending
    /// [`Proposal`] into the estimator (and, for adaptive samplers, the
    /// model the next proposal is computed from).
    fn apply_label(&mut self, proposal: &Proposal, label: bool);

    /// Apply a batch of labels in order.  Equivalent to calling
    /// [`apply_label`](Self::apply_label) once per pair; provided so batch
    /// oracle responses (crowd pushes, engine `label` commands) have a
    /// single entry point.
    fn apply_labels<'a, I>(&mut self, labelled: I)
    where
        I: IntoIterator<Item = (&'a Proposal, bool)>,
    {
        for (proposal, label) in labelled {
            self.apply_label(proposal, label);
        }
    }

    /// The current estimate of the evaluation measures.
    fn estimate(&self) -> Estimate;

    /// A short human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// The method tag (used by sessions, checkpoints and the wire protocol).
    fn method(&self) -> SamplerMethod;

    /// Number of strata the sampler's proposals index into — `1` for
    /// unstratified samplers, whose proposals always carry stratum `0`.
    /// Drivers use this to validate untrusted pending proposals.
    fn strata_len(&self) -> usize {
        1
    }

    /// Ground-truth-free diagnostics of the run so far (see
    /// [`SamplerDiagnostics`]).  Every method reports: adaptive samplers
    /// expose their live instrumental distribution and weight health,
    /// static ones their degenerate equivalents — so drivers never need to
    /// downcast to a concrete sampler type.
    fn diagnostics(&self) -> SamplerDiagnostics;

    /// The *current* instrumental distribution over the sampler's strata —
    /// what the next proposal would draw from.  Method-agnostic (every
    /// sampler has one: OASIS its ε-greedy adaptive proposal, stratified the
    /// static stratum weights, unstratified samplers a single entry holding
    /// all mass), so merged/sharded diagnostics never special-case a
    /// concrete sampler type.  Defaults to the diagnostics' instrumental
    /// vector.
    fn instrumental_snapshot(&self) -> Vec<f64> {
        self.diagnostics().instrumental
    }

    /// A scalar summary of how much un-normalised proposal mass the sampler
    /// currently "wants" — the normalising constant of its instrumental
    /// distribution before mixing/normalisation.  A sharded driver
    /// multiplies this by the shard's pool weight to steer shard selection;
    /// any positive value keeps the merged estimator unbiased (the shard
    /// weight is divided back out), so static samplers simply report the
    /// neutral `1.0`.  Must be a pure function of the serialized state and
    /// strictly positive and finite.
    fn proposal_mass(&self) -> f64 {
        1.0
    }

    /// Capture the full serializable state of the sampler for
    /// checkpointing, tagged with its method.
    fn state(&self) -> SamplerState;

    /// Rebuild a sampler from a captured [`SamplerState`] against the pool
    /// it was captured on.  Exact-resume: the restored sampler continues
    /// bit-for-bit.
    ///
    /// # Errors
    /// A state tagged for a different method, or any validation failure
    /// while reconstructing (allocations outside the pool, corrupt
    /// estimator sums, …).
    fn from_state(pool: &ScoredPool, state: SamplerState) -> Result<Self>
    where
        Self: Sized;
}

/// A sequential sampler that spends oracle labels to estimate the F-measure.
///
/// `Sampler` extends [`InteractiveSampler`] with the classic in-process
/// driving loops; [`step`](Self::step) is a provided method running the
/// state machine without suspension, so implementors typically write only
/// `impl Sampler for X {}`.
pub trait Sampler: InteractiveSampler {
    /// Perform one sampling iteration: choose an item, query the oracle, and
    /// update the estimate.  This is exactly
    /// [`propose`](InteractiveSampler::propose) → [`Oracle::query`] →
    /// [`apply_label`](InteractiveSampler::apply_label), so a `step` loop
    /// and a suspend/resume driver with the same seed are bit-identical.
    fn step<O: Oracle, R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        oracle: &mut O,
        rng: &mut R,
    ) -> Result<StepOutcome> {
        let proposal = self.propose(pool, rng);
        let label = oracle.query(proposal.item, rng)?;
        self.apply_label(&proposal, label);
        Ok(StepOutcome {
            item: proposal.item,
            prediction: proposal.prediction,
            label,
            weight: proposal.weight,
        })
    }

    /// Run `iterations` steps, returning the final estimate.
    fn run<O: Oracle, R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        oracle: &mut O,
        rng: &mut R,
        iterations: usize,
    ) -> Result<Estimate> {
        for _ in 0..iterations {
            self.step(pool, oracle, rng)?;
        }
        Ok(self.estimate())
    }

    /// Run steps until the oracle has consumed `label_budget` labels (or
    /// `max_iterations` steps have elapsed, whichever comes first), returning
    /// the final estimate.  Because draws are with replacement, several
    /// iterations may be needed per consumed label.
    fn run_until_budget<O: Oracle, R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        oracle: &mut O,
        rng: &mut R,
        label_budget: usize,
        max_iterations: usize,
    ) -> Result<Estimate> {
        let mut iterations = 0usize;
        while oracle.labels_consumed() < label_budget && iterations < max_iterations {
            self.step(pool, oracle, rng)?;
            iterations += 1;
        }
        Ok(self.estimate())
    }
}

/// A wrapper that runs any sampler while also feeding a
/// [`VarianceTracker`](crate::confidence::VarianceTracker), so callers get
/// standard errors and confidence intervals alongside the point estimate.
///
/// The tracker observes every applied label, so the wrapper works through
/// both driving styles (`step` loops and propose/apply drivers).  Its
/// [`state`](InteractiveSampler::state) is the inner sampler's with the
/// tracker's running sums attached ([`TrackerState`](state::TrackerState)),
/// so a restored `TrackedSampler` resumes both the estimate *and* its
/// variance accumulation bit-for-bit — the confidence interval after
/// checkpoint → restore → continue is identical to an uninterrupted run.
///
/// Documents written before tracker serialization carry no tracker state
/// (`tracker: null`).  Restoring one starts a fresh tracker and marks it
/// *incomplete* ([`TrackedSampler::tracker_complete`] returns `false`):
/// [`TrackedSampler::confidence_interval`] then returns `None` rather than
/// reporting an interval computed from a silently truncated history.
///
/// ```
/// use oasis::{GroundTruthOracle, OasisConfig, OasisSampler, Sampler, ScoredPool, TrackedSampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let pool = ScoredPool::new(vec![0.9, 0.8, 0.1, 0.05], vec![true, true, false, false]).unwrap();
/// let mut oracle = GroundTruthOracle::new(vec![true, false, false, false]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let inner = OasisSampler::new(&pool, OasisConfig::default().with_strata_count(2)).unwrap();
/// let mut sampler = TrackedSampler::new(inner, 0.5);
/// for _ in 0..20 {
///     sampler.step(&pool, &mut oracle, &mut rng).unwrap();
/// }
/// let interval = sampler.confidence_interval(0.95).unwrap();
/// assert!(interval.lower <= interval.estimate && interval.estimate <= interval.upper);
/// ```
#[derive(Debug, Clone)]
pub struct TrackedSampler<S> {
    inner: S,
    tracker: crate::confidence::VarianceTracker,
    /// Whether the tracker has observed *every* label the inner estimator
    /// folded in.  `false` only after restoring a state with no tracker
    /// snapshot (a pre-tracker-serialization document).
    tracker_complete: bool,
}

impl<S: InteractiveSampler> TrackedSampler<S> {
    /// Wrap a sampler, tracking variance for the α-weighted F-measure.
    pub fn new(inner: S, alpha: f64) -> Self {
        TrackedSampler {
            inner,
            tracker: crate::confidence::VarianceTracker::new(alpha),
            tracker_complete: true,
        }
    }

    /// The wrapped sampler.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The variance tracker accumulated so far.
    pub fn tracker(&self) -> &crate::confidence::VarianceTracker {
        &self.tracker
    }

    /// Whether the variance history covers the whole run.  `false` after
    /// restoring a document that carried no tracker snapshot; such a
    /// tracker only covers the labels applied since the restore, so its
    /// intervals would be misleading and are suppressed.
    pub fn tracker_complete(&self) -> bool {
        self.tracker_complete
    }

    /// A normal-approximation confidence interval at the given level, or
    /// `None` while the estimate is undefined — or while the variance
    /// history is incomplete (see [`TrackedSampler::tracker_complete`]).
    pub fn confidence_interval(&self, level: f64) -> Option<crate::confidence::ConfidenceInterval> {
        if !self.tracker_complete {
            return None;
        }
        self.tracker.confidence_interval(level)
    }
}

impl<S: InteractiveSampler> InteractiveSampler for TrackedSampler<S> {
    fn propose<R: Rng + ?Sized>(&mut self, pool: &ScoredPool, rng: &mut R) -> Proposal {
        self.inner.propose(pool, rng)
    }

    fn propose_batch<R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        rng: &mut R,
        count: usize,
    ) -> Vec<Proposal> {
        self.inner.propose_batch(pool, rng, count)
    }

    fn apply_label(&mut self, proposal: &Proposal, label: bool) {
        self.inner.apply_label(proposal, label);
        self.tracker
            .observe(proposal.weight, proposal.prediction, label);
    }

    fn estimate(&self) -> Estimate {
        self.inner.estimate()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn method(&self) -> SamplerMethod {
        self.inner.method()
    }

    fn strata_len(&self) -> usize {
        self.inner.strata_len()
    }

    fn diagnostics(&self) -> SamplerDiagnostics {
        self.inner.diagnostics()
    }

    fn instrumental_snapshot(&self) -> Vec<f64> {
        self.inner.instrumental_snapshot()
    }

    fn proposal_mass(&self) -> f64 {
        self.inner.proposal_mass()
    }

    fn state(&self) -> SamplerState {
        let mut state = self.inner.state();
        // An incomplete tracker is not serialized: restoring it as if it
        // covered the run would launder a truncated variance history into a
        // trusted one.  Writing `None` keeps the absence explicit end to end.
        state.set_tracker(if self.tracker_complete {
            Some(state::TrackerState::capture(&self.tracker))
        } else {
            None
        });
        state
    }

    fn from_state(pool: &ScoredPool, state: SamplerState) -> Result<Self> {
        let alpha = state.alpha();
        let tracker_state = state.tracker().cloned();
        // A document with no tracker *and* no observations is trivially
        // complete — nothing has happened that the tracker could have missed.
        let trivially_complete = state.iterations() == 0;
        let inner = S::from_state(pool, state)?;
        Ok(match tracker_state {
            Some(snapshot) => TrackedSampler {
                inner,
                tracker: snapshot.rebuild()?,
                tracker_complete: true,
            },
            None => TrackedSampler {
                inner,
                tracker: crate::confidence::VarianceTracker::new(alpha),
                tracker_complete: trivially_complete,
            },
        })
    }
}

impl<S: InteractiveSampler> Sampler for TrackedSampler<S> {}

/// Write the running cumulative sums of `probabilities` into `cumulative`
/// (cleared first), reusing its capacity.  Shared by the one-shot sampler,
/// [`CategoricalCdf`] and the adaptive samplers' scratch buffers.
pub(crate) fn fill_cumulative(probabilities: &[f64], cumulative: &mut Vec<f64>) {
    cumulative.clear();
    cumulative.reserve(probabilities.len());
    let mut running = 0.0;
    for &p in probabilities {
        running += p;
        cumulative.push(running);
    }
}

/// Draw an index from a categorical distribution given by `probabilities`
/// (assumed non-negative; they need not be exactly normalised).  Uses a single
/// uniform variate and O(log K) binary search over the cumulative weights.
///
/// The original implementation subtracted weights in a linear scan (the cost
/// profile of `numpy.random.choice(p=...)` used by the paper's reference
/// implementation).  This one-shot form still pays an O(K) cumulative-sum
/// construction per draw; samplers on hot paths avoid that by caching the
/// sums — [`CategoricalCdf`] for static distributions, a reusable scratch
/// buffer inside [`OasisSampler`] for the adaptive one.
pub fn sample_categorical<R: Rng + ?Sized>(rng: &mut R, probabilities: &[f64]) -> usize {
    debug_assert!(!probabilities.is_empty());
    let mut cumulative = Vec::new();
    fill_cumulative(probabilities, &mut cumulative);
    sample_from_cumulative(rng, &cumulative)
}

/// Draw an index given the *cumulative* weights `cumulative[i] = p_0 + … + p_i`
/// (left-to-right partial sums).  Shared by [`sample_categorical`] and
/// [`CategoricalCdf`].
pub fn sample_from_cumulative<R: Rng + ?Sized>(rng: &mut R, cumulative: &[f64]) -> usize {
    debug_assert!(!cumulative.is_empty());
    let total = *cumulative.last().unwrap();
    if total <= 0.0 || !total.is_finite() {
        // Degenerate distribution: fall back to uniform.
        return rng.gen_range(0..cumulative.len());
    }
    let target = rng.gen::<f64>() * total;
    // First index whose cumulative weight reaches the target.  `partition_point`
    // is a binary search: all entries `< target` precede all entries `>= target`
    // because the cumulative sums are non-decreasing.
    let index = cumulative.partition_point(|&c| c < target);
    index.min(cumulative.len() - 1)
}

/// A categorical distribution with precomputed cumulative weights, for
/// repeated O(log K) draws from the same (frozen) distribution.
///
/// This is what makes the binary-search representation pay off: the static
/// samplers ([`ImportanceSampler`] over all N pool items,
/// [`StratifiedSampler`] over stratum weights) build their CDF once at
/// construction and every subsequent draw is logarithmic, where the original
/// subtractive scan paid O(N) (resp. O(K)) per draw.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalCdf {
    cumulative: Vec<f64>,
}

impl CategoricalCdf {
    /// Precompute the cumulative weights of `probabilities` (non-negative,
    /// not necessarily normalised).
    ///
    /// # Panics
    /// Panics if `probabilities` is empty.
    pub fn new(probabilities: &[f64]) -> Self {
        assert!(
            !probabilities.is_empty(),
            "categorical distribution needs at least one weight"
        );
        let mut cumulative = Vec::new();
        fill_cumulative(probabilities, &mut cumulative);
        CategoricalCdf { cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether there are zero categories (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw one index using a single uniform variate and binary search.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        sample_from_cumulative(rng, &self.cumulative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn categorical_sampling_respects_probabilities() {
        let mut rng = StdRng::seed_from_u64(123);
        let probs = [0.1, 0.6, 0.3];
        let mut counts = [0usize; 3];
        let draws = 60_000;
        for _ in 0..draws {
            counts[sample_categorical(&mut rng, &probs)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / draws as f64;
            assert!(
                (freq - probs[i]).abs() < 0.02,
                "index {i}: frequency {freq} vs probability {}",
                probs[i]
            );
        }
    }

    #[test]
    fn categorical_sampling_handles_unnormalised_and_degenerate_input() {
        let mut rng = StdRng::seed_from_u64(9);
        // Unnormalised input is fine.
        let idx = sample_categorical(&mut rng, &[2.0, 0.0, 0.0]);
        assert_eq!(idx, 0);
        // All-zero mass falls back to uniform over the support.
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[sample_categorical(&mut rng, &[0.0, 0.0, 0.0])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn categorical_sampling_single_element() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_categorical(&mut rng, &[1.0]), 0);
    }

    /// The legacy subtractive linear scan, kept as the reference
    /// implementation the binary-search version is audited against.
    fn linear_scan_reference(target: f64, probabilities: &[f64]) -> usize {
        let mut remaining = target;
        for (index, &p) in probabilities.iter().enumerate() {
            remaining -= p;
            if remaining <= 0.0 {
                return index;
            }
        }
        probabilities.len() - 1
    }

    /// Linear scan over the *cumulative* weights — exactly the quantity the
    /// binary search partitions, so the two must agree on every draw.
    fn cumulative_scan_reference(target: f64, cumulative: &[f64]) -> usize {
        for (index, &c) in cumulative.iter().enumerate() {
            if c >= target {
                return index;
            }
        }
        cumulative.len() - 1
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Exact audit: for any weights and any uniform draw, binary search
        /// over the cumulative weights picks the same index as a linear scan
        /// over the same cumulative weights.
        #[test]
        fn binary_search_matches_cumulative_linear_scan(
            weights in proptest::collection::vec(0.0f64..1e6, 1..200),
            unit in 0.0f64..1.0,
        ) {
            let cdf = CategoricalCdf::new(&weights);
            let total = *cdf.cumulative.last().unwrap();
            proptest::prop_assume!(total > 0.0 && total.is_finite());
            let target = unit * total;
            let by_search = cdf.cumulative.partition_point(|&c| c < target)
                .min(weights.len() - 1);
            let by_scan = cumulative_scan_reference(target, &cdf.cumulative);
            proptest::prop_assert_eq!(by_search, by_scan);
        }

        /// Distributional audit under fixed seeds: driving the legacy
        /// subtractive scan and the new binary search with the *same* RNG
        /// stream yields empirical frequencies that agree to sampling noise.
        #[test]
        fn binary_search_agrees_distributionally_with_legacy_scan(
            weights in proptest::collection::vec(0.01f64..10.0, 2..20),
            seed in proptest::prelude::any::<u64>(),
        ) {
            let draws = 4000usize;
            let total: f64 = weights.iter().sum();
            let mut old_counts = vec![0usize; weights.len()];
            let mut new_counts = vec![0usize; weights.len()];
            let mut rng_old = StdRng::seed_from_u64(seed);
            let mut rng_new = StdRng::seed_from_u64(seed);
            for _ in 0..draws {
                let target = rng_old.gen::<f64>() * total;
                old_counts[linear_scan_reference(target, &weights)] += 1;
                new_counts[sample_categorical(&mut rng_new, &weights)] += 1;
            }
            for (k, (&o, &n)) in old_counts.iter().zip(new_counts.iter()).enumerate() {
                let diff = (o as f64 - n as f64).abs() / draws as f64;
                // Same seed → same uniform stream; the implementations can
                // only disagree on rounding-boundary draws, which are
                // vanishingly rare, so frequencies must be near-identical.
                proptest::prop_assert!(
                    diff < 0.01,
                    "stratum {} frequency drift {} (old {}, new {})", k, diff, o, n
                );
            }
        }
    }

    #[test]
    fn cdf_caches_and_samples_like_the_one_shot_path() {
        let weights = [0.2, 0.5, 0.3];
        let cdf = CategoricalCdf::new(&weights);
        assert_eq!(cdf.len(), 3);
        assert!(!cdf.is_empty());
        let mut a = StdRng::seed_from_u64(77);
        let mut b = StdRng::seed_from_u64(77);
        for _ in 0..500 {
            assert_eq!(cdf.sample(&mut a), sample_categorical(&mut b, &weights));
        }
    }

    #[test]
    fn tracked_sampler_observes_through_the_interactive_path() {
        use crate::oracle::GroundTruthOracle;
        let (pool, truth) = crate::test_fixtures::pool_and_truth(200, 3, 0.2);
        let inner = PassiveSampler::new(0.5);
        let mut tracked = TrackedSampler::new(inner, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        // Drive through propose/apply rather than step.
        for _ in 0..60 {
            let proposal = tracked.propose(&pool, &mut rng);
            tracked.apply_label(&proposal, truth[proposal.item]);
        }
        assert_eq!(tracked.tracker().count(), 60);
        assert_eq!(tracked.method(), SamplerMethod::Passive);

        // State restore keeps the estimate AND the tracker: the confidence
        // interval after a checkpoint/restore round-trip is bit-identical.
        let state = tracked.state();
        let restored = TrackedSampler::<PassiveSampler>::from_state(&pool, state).unwrap();
        assert_eq!(
            restored.estimate().f_measure.to_bits(),
            tracked.estimate().f_measure.to_bits()
        );
        assert!(restored.tracker_complete());
        assert_eq!(restored.tracker().count(), 60);
        let before = tracked.confidence_interval(0.95).unwrap();
        let after = restored.confidence_interval(0.95).unwrap();
        assert_eq!(before.lower.to_bits(), after.lower.to_bits());
        assert_eq!(before.upper.to_bits(), after.upper.to_bits());
        assert_eq!(
            before.standard_error.to_bits(),
            after.standard_error.to_bits()
        );
        let mut oracle = GroundTruthOracle::new(truth);
        let mut restored = restored;
        restored.step(&pool, &mut oracle, &mut rng).unwrap();
        assert_eq!(restored.tracker().count(), 61);
    }
}
