//! Bench: regenerate Figure 4 (convergence of OASIS internals).

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figure4::{run, Figure4Config};

fn bench_figure4(c: &mut Criterion) {
    let config = Figure4Config {
        scale: 0.2,
        strata: 30,
        budget_fraction: 0.2,
        checkpoints: 10,
        seed: 2017,
    };
    let figure = run(&config);
    println!("\n{}", figure.render());

    let mut group = c.benchmark_group("figure4");
    group.sample_size(10);
    let quick = Figure4Config {
        scale: 0.05,
        strata: 15,
        budget_fraction: 0.2,
        checkpoints: 5,
        seed: 2017,
    };
    group.bench_function("convergence_trace_scale_0.05", |b| b.iter(|| run(&quick)));
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
