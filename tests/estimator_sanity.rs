//! Estimator-sanity tests (the paper's consistency claim, Theorem 3 / the
//! Delyon–Portier asymptotic-optimality setting): when a pool is driven to
//! full labelling, the terminal estimate of every sampler must agree with the
//! exhaustively computed F-measure.

use er_core::datasets::score_model::{DirectPoolConfig, DirectPoolModel};
use oasis::measures::exhaustive_measures;
use oasis::oracle::{GroundTruthOracle, Oracle};
use oasis::samplers::{OasisConfig, OasisSampler, PassiveSampler, Sampler, StratifiedSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALPHA: f64 = 0.5;

/// A modest imbalanced pool, small enough to label exhaustively in-test.
fn pool_and_truth(seed: u64) -> (oasis::ScoredPool, Vec<bool>, f64) {
    let config = DirectPoolConfig {
        pool_size: 1500,
        match_count: 45,
        match_logit_mean: 1.0,
        non_match_logit_mean: -2.5,
        logit_noise: 1.5,
        decision_threshold: 0.5,
        uncalibrated_scores: false,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (pool, truth) = DirectPoolModel::new(config).generate(&mut rng);
    let target = exhaustive_measures(pool.predictions(), &truth, ALPHA).f_measure;
    (pool, truth, target)
}

/// Drive a sampler toward labelling the entire pool (draws are with
/// replacement, so this takes more iterations than pool items), then return
/// its terminal F-measure estimate. `min_coverage` is the fraction of the
/// pool that must end up labelled: 1.0 for the non-adaptive samplers, a
/// whisker less for OASIS, whose ε-greedy proposal decays the uniform mass,
/// making the last few never-drawn items astronomically rare for some seeds.
fn terminal_estimate<S: Sampler>(
    sampler: &mut S,
    pool: &oasis::ScoredPool,
    truth: &[bool],
    seed: u64,
    min_coverage: f64,
) -> f64 {
    let mut oracle = GroundTruthOracle::new(truth.to_vec());
    let mut rng = StdRng::seed_from_u64(seed);
    let estimate = sampler
        .run_until_budget(pool, &mut oracle, &mut rng, pool.len(), 5_000_000)
        .unwrap();
    let coverage = oracle.labels_consumed() as f64 / pool.len() as f64;
    assert!(
        coverage >= min_coverage,
        "{} labelled only {:.1}% of the pool (needed {:.1}%)",
        sampler.name(),
        coverage * 100.0,
        min_coverage * 100.0
    );
    assert!(estimate.is_defined());
    estimate.f_measure
}

#[test]
fn fully_labelled_estimates_converge_to_the_exhaustive_f_measure() {
    let (pool, truth, target) = pool_and_truth(11);
    assert!(
        target > 0.0,
        "degenerate pool: exhaustive F-measure is zero"
    );

    let mut passive = PassiveSampler::new(ALPHA);
    let mut stratified = StratifiedSampler::new(&pool, ALPHA, 25).unwrap();
    let mut oasis_sampler =
        OasisSampler::new(&pool, OasisConfig::default().with_strata_count(25)).unwrap();

    let estimates = [
        (
            "passive",
            terminal_estimate(&mut passive, &pool, &truth, 21, 1.0),
        ),
        (
            "stratified",
            terminal_estimate(&mut stratified, &pool, &truth, 22, 1.0),
        ),
        (
            "oasis",
            terminal_estimate(&mut oasis_sampler, &pool, &truth, 23, 1.0),
        ),
    ];

    for (name, estimate) in estimates {
        assert!(
            (estimate - target).abs() < 0.05,
            "{name} terminal estimate {estimate:.4} should match the exhaustive \
             F-measure {target:.4} on a fully-labelled pool"
        );
    }
}

#[test]
fn consistency_holds_across_pool_seeds() {
    // The claim is about the estimator, not one lucky pool: repeat the
    // terminal-agreement check on three structurally different pools.
    for pool_seed in [101, 202, 303] {
        let (pool, truth, target) = pool_and_truth(pool_seed);
        let mut sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(20)).unwrap();
        let estimate = terminal_estimate(&mut sampler, &pool, &truth, pool_seed + 7, 0.95);
        assert!(
            (estimate - target).abs() < 0.06,
            "pool seed {pool_seed}: OASIS terminal estimate {estimate:.4} vs \
             exhaustive {target:.4}"
        );
    }
}
