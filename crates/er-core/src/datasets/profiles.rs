//! The six dataset profiles of the paper's Tables 1 and 2.
//!
//! Each profile records (a) the published dataset statistics from Table 1,
//! (b) the published pool statistics and linear-SVM operating point from
//! Table 2, and (c) the parameters of our synthetic stand-ins: a record-level
//! generator configuration (two sources + corruption) and a direct score-model
//! configuration whose logit means were chosen so that the synthetic
//! classifier's precision/recall land near the published operating point.

use super::generator::GeneratorConfig;
use super::score_model::DirectPoolConfig;
use super::vocabulary::EntityKind;
use crate::datasets::corruption::CorruptionConfig;

/// The application domain a dataset comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// E-commerce product matching (Abt-Buy, Amazon-GoogleProducts).
    ECommerce,
    /// Bibliographic citation matching (DBLP-ACM, cora).
    Citations,
    /// Restaurant guidebook listings (restaurant).
    Restaurants,
    /// Crowdsourced tweet classification — not ER, included as the balanced
    /// control (tweets100k).
    Tweets,
}

/// A named dataset profile mirroring one row of Tables 1 and 2.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Application domain.
    pub domain: Domain,
    /// Table 1: total number of record pairs in the full dataset.
    pub dataset_size: u64,
    /// Table 1: class-imbalance ratio of the full dataset.
    pub dataset_imbalance: f64,
    /// Table 1: number of matching pairs in the full dataset.
    pub dataset_matches: u64,
    /// Table 2: number of record pairs in the evaluation pool.
    pub pool_size: usize,
    /// Table 2: number of matching pairs in the evaluation pool.
    pub pool_matches: usize,
    /// Table 2: linear-SVM precision on the pool.
    pub target_precision: f64,
    /// Table 2: linear-SVM recall on the pool.
    pub target_recall: f64,
    /// Table 2: linear-SVM balanced F-measure on the pool.
    pub target_f_measure: f64,
    /// Corruption intensity used by the record-level generator (0 = light,
    /// 1 = heavy), tuned so the trained classifier's operating point is in the
    /// right regime.
    pub corruption_intensity: f64,
    /// Whether the dataset is a single-source deduplication problem (cora).
    pub deduplication: bool,
    /// Duplicate-cluster size used in deduplication mode.
    pub dedup_cluster_size: usize,
    /// Entity domain used by the record-level generator (`None` for the
    /// non-ER tweets dataset, which only has a direct score model).
    entity_kind: Option<EntityKind>,
    /// Direct score-model parameters (logit means / noise), hand-tuned to the
    /// published operating point.
    match_logit_mean: f64,
    non_match_logit_mean: f64,
    logit_noise: f64,
}

impl DatasetProfile {
    /// Amazon-GoogleProducts: the most imbalanced pool (1:3381), weak classifier.
    pub fn amazon_google() -> Self {
        DatasetProfile {
            name: "Amazon-GoogleProducts",
            domain: Domain::ECommerce,
            dataset_size: 4_397_038,
            dataset_imbalance: 3381.0,
            dataset_matches: 1300,
            pool_size: 676_267,
            pool_matches: 200,
            target_precision: 0.597,
            target_recall: 0.185,
            target_f_measure: 0.282,
            corruption_intensity: 0.95,
            deduplication: false,
            dedup_cluster_size: 0,
            entity_kind: Some(EntityKind::Product),
            match_logit_mean: -1.34,
            non_match_logit_mean: -5.94,
            logit_noise: 1.5,
        }
    }

    /// restaurant: small pool, strong classifier.
    pub fn restaurant() -> Self {
        DatasetProfile {
            name: "restaurant",
            domain: Domain::Restaurants,
            dataset_size: 745_632,
            dataset_imbalance: 3328.0,
            dataset_matches: 224,
            pool_size: 149_747,
            pool_matches: 45,
            target_precision: 0.909,
            target_recall: 0.888,
            target_f_measure: 0.899,
            corruption_intensity: 0.15,
            deduplication: false,
            dedup_cluster_size: 0,
            entity_kind: Some(EntityKind::Restaurant),
            match_logit_mean: 1.82,
            non_match_logit_mean: -6.06,
            logit_noise: 1.5,
        }
    }

    /// DBLP-ACM: near-perfect classifier, very few pool matches.
    pub fn dblp_acm() -> Self {
        DatasetProfile {
            name: "DBLP-ACM",
            domain: Domain::Citations,
            dataset_size: 5_998_880,
            dataset_imbalance: 2697.0,
            dataset_matches: 2224,
            pool_size: 53_946,
            pool_matches: 20,
            target_precision: 1.0,
            target_recall: 0.9,
            target_f_measure: 0.947,
            corruption_intensity: 0.08,
            deduplication: false,
            dedup_cluster_size: 0,
            entity_kind: Some(EntityKind::Citation),
            match_logit_mean: 1.92,
            non_match_logit_mean: -6.75,
            logit_noise: 1.5,
        }
    }

    /// Abt-Buy: high precision, low recall — the paper's running example.
    pub fn abt_buy() -> Self {
        DatasetProfile {
            name: "Abt-Buy",
            domain: Domain::ECommerce,
            dataset_size: 1_180_452,
            dataset_imbalance: 1075.0,
            dataset_matches: 1097,
            pool_size: 53_753,
            pool_matches: 50,
            target_precision: 0.916,
            target_recall: 0.44,
            target_f_measure: 0.595,
            corruption_intensity: 0.8,
            deduplication: false,
            dedup_cluster_size: 0,
            entity_kind: Some(EntityKind::Product),
            match_logit_mean: -0.23,
            non_match_logit_mean: -5.94,
            logit_noise: 1.5,
        }
    }

    /// cora: single-source deduplication with mild imbalance (1:47.8).
    pub fn cora() -> Self {
        DatasetProfile {
            name: "cora",
            domain: Domain::Citations,
            dataset_size: 1_675_730,
            dataset_imbalance: 47.76,
            dataset_matches: 34_368,
            pool_size: 328_291,
            pool_matches: 6874,
            target_precision: 0.841,
            target_recall: 0.837,
            target_f_measure: 0.839,
            corruption_intensity: 0.35,
            deduplication: true,
            dedup_cluster_size: 20,
            entity_kind: Some(EntityKind::Citation),
            match_logit_mean: 1.47,
            non_match_logit_mean: -4.06,
            logit_noise: 1.5,
        }
    }

    /// tweets100k: a balanced, non-ER control dataset.
    pub fn tweets100k() -> Self {
        DatasetProfile {
            name: "tweets100k",
            domain: Domain::Tweets,
            dataset_size: 100_000,
            dataset_imbalance: 1.0,
            dataset_matches: 50_000,
            pool_size: 20_000,
            pool_matches: 10_049,
            target_precision: 0.762,
            target_recall: 0.778,
            target_f_measure: 0.770,
            corruption_intensity: 0.5,
            deduplication: false,
            dedup_cluster_size: 0,
            entity_kind: None,
            match_logit_mean: 1.15,
            non_match_logit_mean: -1.03,
            logit_noise: 1.5,
        }
    }

    /// The class-imbalance ratio of the evaluation pool.
    pub fn pool_imbalance(&self) -> f64 {
        (self.pool_size - self.pool_matches) as f64 / self.pool_matches as f64
    }

    /// The direct score-model configuration for this profile, with the pool
    /// scaled by `scale` (1.0 = the paper's pool size; use small values in
    /// unit tests).  At least one match is always retained.
    pub fn direct_pool_config(&self, scale: f64) -> DirectPoolConfig {
        let scale = scale.clamp(1e-6, 1.0);
        let pool_size = ((self.pool_size as f64 * scale).round() as usize).max(10);
        let match_count = ((self.pool_matches as f64 * scale).round() as usize)
            .max(1)
            .min(pool_size);
        DirectPoolConfig {
            pool_size,
            match_count,
            match_logit_mean: self.match_logit_mean,
            non_match_logit_mean: self.non_match_logit_mean,
            logit_noise: self.logit_noise,
            decision_threshold: 0.5,
            uncalibrated_scores: false,
        }
    }

    /// The record-level generator configuration for this profile (pool scaled
    /// by `scale`), or `None` for the non-ER tweets profile.
    ///
    /// Source sizes are chosen so the full cross product (or dedup upper
    /// triangle) approximates the scaled pool size.
    pub fn generator_config(&self, scale: f64) -> Option<GeneratorConfig> {
        let kind = self.entity_kind?;
        let scale = scale.clamp(1e-6, 1.0);
        let pool_size = ((self.pool_size as f64 * scale).round() as usize).max(16);
        let match_count = ((self.pool_matches as f64 * scale).round() as usize).max(1);
        if self.deduplication {
            // n(n−1)/2 ≈ pool_size → n ≈ (1 + √(1 + 8·pool)) / 2
            let n = ((1.0 + (1.0 + 8.0 * pool_size as f64).sqrt()) / 2.0).round() as usize;
            Some(GeneratorConfig {
                kind,
                source_a_size: n.max(4),
                source_b_size: 0,
                match_count: 0,
                corruption: CorruptionConfig::with_intensity(self.corruption_intensity),
                deduplication: true,
                dedup_cluster_size: self.dedup_cluster_size.max(2),
            })
        } else {
            let side = (pool_size as f64).sqrt().round() as usize;
            let source_a = side.max(2);
            let source_b = (pool_size / source_a).max(2);
            Some(GeneratorConfig {
                kind,
                source_a_size: source_a,
                source_b_size: source_b,
                match_count: match_count.min(source_a).min(source_b),
                corruption: CorruptionConfig::with_intensity(self.corruption_intensity),
                deduplication: false,
                dedup_cluster_size: 0,
            })
        }
    }
}

/// All six profiles, in the paper's Table 1 order (decreasing class imbalance).
pub fn all_profiles() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile::amazon_google(),
        DatasetProfile::restaurant(),
        DatasetProfile::dblp_acm(),
        DatasetProfile::abt_buy(),
        DatasetProfile::cora(),
        DatasetProfile::tweets100k(),
    ]
}

/// Look up a profile by its paper name (case-insensitive).
pub fn profile_by_name(name: &str) -> Option<DatasetProfile> {
    all_profiles()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::generator::SyntheticDataset;
    use crate::datasets::score_model::DirectPoolModel;
    use oasis::measures::exhaustive_measures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn there_are_six_profiles_in_imbalance_order() {
        let profiles = all_profiles();
        assert_eq!(profiles.len(), 6);
        for window in profiles.windows(2) {
            assert!(
                window[0].dataset_imbalance >= window[1].dataset_imbalance,
                "profiles must be ordered by decreasing imbalance"
            );
        }
    }

    #[test]
    fn profile_lookup_by_name() {
        assert_eq!(profile_by_name("abt-buy").unwrap().name, "Abt-Buy");
        assert_eq!(profile_by_name("CORA").unwrap().name, "cora");
        assert!(profile_by_name("unknown").is_none());
    }

    #[test]
    fn pool_imbalance_matches_table_2() {
        // Table 2 reports the imbalance of each pool; ours must agree to ~1%.
        let cases = [
            (DatasetProfile::amazon_google(), 3381.0),
            (DatasetProfile::restaurant(), 3328.0),
            (DatasetProfile::dblp_acm(), 2697.0),
            (DatasetProfile::abt_buy(), 1075.0),
            (DatasetProfile::cora(), 47.76),
        ];
        for (profile, expected) in cases {
            let ratio = profile.pool_imbalance();
            // Table 2's cora row rounds slightly differently from
            // (size − matches)/matches; allow 3%.
            assert!(
                (ratio - expected).abs() / expected < 0.03,
                "{}: imbalance {ratio} vs published {expected}",
                profile.name
            );
        }
    }

    #[test]
    fn direct_pools_land_near_published_operating_points() {
        // Generate each profile's direct pool at 30% scale and check the
        // classifier operating point is in the right regime (±0.12 absolute).
        let mut rng = StdRng::seed_from_u64(99);
        for profile in all_profiles() {
            // Scale each pool so it still contains enough matches for the
            // empirical recall to be statistically stable (≥ ~50 matches where
            // the full pool has them).
            let scale = (60.0 / profile.pool_matches as f64).clamp(0.05, 1.0);
            let config = profile.direct_pool_config(scale);
            let (pool, truth) = DirectPoolModel::new(config).generate(&mut rng);
            let m = exhaustive_measures(pool.predictions(), &truth, 0.5);
            assert!(
                (m.recall - profile.target_recall).abs() < 0.15,
                "{}: recall {:.3} vs target {:.3}",
                profile.name,
                m.recall,
                profile.target_recall
            );
            // Precision is only statistically meaningful when the scaled pool
            // contains enough true positives; tiny scaled pools (e.g.
            // Amazon-Google at 10% has ~20 matches and recall 0.185, i.e. ~4
            // true positives) are skipped.
            let expected_tp = config.match_count as f64 * profile.target_recall;
            if expected_tp >= 15.0 {
                assert!(
                    (m.precision - profile.target_precision).abs() < 0.2,
                    "{}: precision {:.3} vs target {:.3}",
                    profile.name,
                    m.precision,
                    profile.target_precision
                );
            }
        }
    }

    #[test]
    fn scaled_direct_pool_respects_scale() {
        let profile = DatasetProfile::abt_buy();
        let config = profile.direct_pool_config(0.01);
        assert!(config.pool_size < profile.pool_size / 50);
        assert!(config.match_count >= 1);
        let full = profile.direct_pool_config(1.0);
        assert_eq!(full.pool_size, profile.pool_size);
        assert_eq!(full.match_count, profile.pool_matches);
    }

    #[test]
    fn generator_configs_exist_for_er_profiles_only() {
        assert!(DatasetProfile::abt_buy().generator_config(0.01).is_some());
        assert!(DatasetProfile::cora().generator_config(0.01).is_some());
        assert!(DatasetProfile::tweets100k()
            .generator_config(0.01)
            .is_none());
    }

    #[test]
    fn generated_records_approximate_scaled_pool_size() {
        let mut rng = StdRng::seed_from_u64(7);
        let profile = DatasetProfile::abt_buy();
        let config = profile.generator_config(0.02).unwrap();
        let dataset = SyntheticDataset::generate(config, &mut rng);
        let target = (profile.pool_size as f64 * 0.02) as usize;
        assert!(
            dataset.pair_count() as f64 > target as f64 * 0.5
                && (dataset.pair_count() as f64) < target as f64 * 2.0,
            "pair count {} vs target {target}",
            dataset.pair_count()
        );
        assert!(dataset.match_count() >= 1);
    }

    #[test]
    fn cora_generator_is_deduplication() {
        let mut rng = StdRng::seed_from_u64(8);
        let config = DatasetProfile::cora().generator_config(0.001).unwrap();
        assert!(config.deduplication);
        let dataset = SyntheticDataset::generate(config, &mut rng);
        // Dedup pools are far less imbalanced than linkage pools.
        assert!(dataset.imbalance_ratio().unwrap() < 200.0);
    }
}
