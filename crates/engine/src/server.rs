//! Transport layer for the line protocol: stdio and TCP serving loops.
//!
//! [`serve_lines`] is the transport-agnostic core — one request line in, one
//! response line out — used directly for stdin/stdout mode and per-connection
//! in TCP mode.  TCP connections are handled on vendored-crossbeam scoped
//! threads sharing one [`Engine`], so concurrent clients can drive disjoint
//! sessions in parallel (per-session locks serialise conflicting access).
//!
//! Every entry point has a `_with_log` variant accepting an [`EventLog`];
//! with [`LogFormat::Json`](crate::log::LogFormat::Json) each request emits
//! one structured event (verb, session, latency, outcome) — see
//! [`crate::log`].  The log-free variants keep the original behaviour.

use crate::engine::Engine;
use crate::error::EngineError;
use crate::guard::{guarded_dispatch, ClientPolicy, ConnState};
use crate::log::EventLog;
use crate::metrics::Counter;
use crate::protocol::{error_response, Dispatch, Request};
use parking_lot::Mutex;
use serde::json::Json;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Largest request line either serving loop will buffer.  Checkpoint
/// documents for large pools are megabytes, so the cap is generous — but it
/// must exist: without it a client streaming bytes with no newline grows the
/// line buffer until the process OOMs, bypassing every parse-time limit.
pub const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Outcome of one bounded line read.
enum LineStatus {
    /// Clean EOF at a line boundary (or empty final read).
    Eof,
    /// A full newline-terminated line is in the buffer.
    Complete,
    /// EOF arrived mid-line; the partial line is in the buffer.
    FinalPartial,
    /// The line exceeded [`MAX_LINE_BYTES`] before a newline appeared.
    TooLong,
}

/// Read up to the rest of one line into `line`, never letting the buffer
/// exceed [`MAX_LINE_BYTES`] (+1 sentinel byte to detect overflow).
fn fill_line<R: BufRead>(reader: &mut R, line: &mut Vec<u8>) -> std::io::Result<LineStatus> {
    use std::io::Read as _;
    loop {
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(line.len());
        if budget == 0 {
            return Ok(LineStatus::TooLong);
        }
        let n = reader
            .by_ref()
            .take(budget as u64)
            .read_until(b'\n', line)?;
        if line.last() == Some(&b'\n') {
            return Ok(LineStatus::Complete);
        }
        if n == 0 {
            return Ok(if line.is_empty() {
                LineStatus::Eof
            } else {
                LineStatus::FinalPartial
            });
        }
        // Budget exhausted without a newline: loop once more so the len
        // check above reports TooLong.
    }
}

/// Route an operational message through the event log when one is attached,
/// or straight to stderr in the legacy format otherwise.
pub(crate) fn log_message(log: Option<&EventLog>, text: &str) {
    match log {
        Some(log) => log.message(text),
        None => eprintln!("oasis-serve: {text}"),
    }
}

/// Render the response for one raw request line (`None` for blank lines),
/// emitting one structured event per request when a log is attached.  With a
/// [`ClientPolicy`], requests are screened (auth, rate limits) before they
/// reach the engine; `conn` carries this connection's authentication state.
pub(crate) fn handle_line(
    engine: &Engine,
    raw: &[u8],
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
    conn: &mut ConnState,
) -> Option<Dispatch> {
    let text = String::from_utf8_lossy(raw);
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return None;
    }
    let started = Instant::now();
    Some(match Request::parse(trimmed) {
        Ok(request) => {
            let verb = request.verb();
            let session = request.session_id().map(str::to_string);
            let outcome = guarded_dispatch(engine, policy, conn, request);
            if let Some(log) = log {
                let ok = matches!(outcome.response.get("ok"), Some(Json::Bool(true)));
                log.request(
                    verb,
                    session.as_deref(),
                    started.elapsed().as_micros() as u64,
                    ok,
                );
            }
            outcome
        }
        Err(error) => {
            if let Some(log) = log {
                log.request(
                    "parse_error",
                    None,
                    started.elapsed().as_micros() as u64,
                    false,
                );
            }
            Dispatch {
                response: error_response(&error),
                shutdown: false,
            }
        }
    })
}

fn write_response<W: Write>(writer: &mut W, response: &serde::json::Json) -> std::io::Result<()> {
    writer.write_all(response.render().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// The structured rejection for an overlong request line: `ok:false` with
/// `kind:"line_too_long"`, so clients can tell a framing overflow apart
/// from a malformed request.  Bumps the [`Counter::LineTooLong`] metric.
pub(crate) fn line_too_long_response(engine: &Engine, max: usize) -> serde::json::Json {
    engine.metrics().incr(Counter::LineTooLong);
    error_response(&EngineError::LineTooLong(max))
}

/// Serve the line protocol over any reader/writer pair until EOF or a
/// `shutdown` command.  Returns `true` if the loop ended because of
/// `shutdown` (as opposed to EOF).
///
/// Blank lines are ignored; malformed lines produce an `"ok": false`
/// response and the loop continues — a broken client cannot wedge the
/// server.  Lines longer than [`MAX_LINE_BYTES`] are answered with an error
/// and discarded without being buffered whole.
///
/// # Errors
/// Only I/O failures on the transport itself.
pub fn serve_lines<R: BufRead, W: Write>(
    engine: &Engine,
    reader: R,
    writer: &mut W,
) -> std::io::Result<bool> {
    serve_lines_with_log(engine, reader, writer, None)
}

/// [`serve_lines`] with an attached [`EventLog`] for per-request events.
///
/// # Errors
/// Only I/O failures on the transport itself.
pub fn serve_lines_with_log<R: BufRead, W: Write>(
    engine: &Engine,
    reader: R,
    writer: &mut W,
    log: Option<&EventLog>,
) -> std::io::Result<bool> {
    serve_lines_guarded(engine, reader, writer, log, None)
}

/// [`serve_lines_with_log`] with an optional [`ClientPolicy`]: requests are
/// screened for auth and rate limits before reaching the engine, each
/// rejection a structured `ok:false` line (kind `unauthorized`/`throttled`).
///
/// # Errors
/// Only I/O failures on the transport itself.
pub fn serve_lines_guarded<R: BufRead, W: Write>(
    engine: &Engine,
    mut reader: R,
    writer: &mut W,
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
) -> std::io::Result<bool> {
    let mut conn = ConnState::default();
    let mut line = Vec::new();
    let mut discarding = false;
    loop {
        match fill_line(&mut reader, &mut line)? {
            LineStatus::Eof => return Ok(false),
            LineStatus::Complete | LineStatus::FinalPartial => {
                let at_eof = line.last() != Some(&b'\n');
                if discarding {
                    discarding = false;
                } else if let Some(outcome) = handle_line(engine, &line, log, policy, &mut conn) {
                    write_response(writer, &outcome.response)?;
                    if outcome.shutdown {
                        return Ok(true);
                    }
                }
                line.clear();
                if at_eof {
                    return Ok(false);
                }
            }
            LineStatus::TooLong => {
                if !discarding {
                    write_response(writer, &line_too_long_response(engine, MAX_LINE_BYTES))?;
                    discarding = true;
                }
                line.clear();
            }
        }
    }
}

/// Serve the line protocol over TCP, handling each connection on a scoped
/// worker thread against the shared engine.  Returns when a client issues
/// `shutdown`: the accept loop stops and every open connection is closed
/// from the accept side (a connection registry tracks the open sockets, so
/// even idle clients are woken promptly — no read-timeout polling, zero CPU
/// per idle connection, shutdown latency bounded by a socket close).
///
/// # Errors
/// Socket bind/accept failures.
pub fn serve_tcp(engine: &Engine, addr: &str) -> std::io::Result<()> {
    serve_listener(engine, TcpListener::bind(addr)?)
}

/// [`serve_tcp`] with an attached [`EventLog`] for per-request events.
///
/// # Errors
/// Socket bind/accept failures.
pub fn serve_tcp_with_log(
    engine: &Engine,
    addr: &str,
    log: Option<&EventLog>,
) -> std::io::Result<()> {
    serve_listener_with_log(engine, TcpListener::bind(addr)?, log)
}

/// [`serve_tcp_with_log`] with an optional [`ClientPolicy`] screening every
/// connection (auth state is per-connection; rate buckets are shared).
///
/// # Errors
/// Socket bind/accept failures.
pub fn serve_tcp_guarded(
    engine: &Engine,
    addr: &str,
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
) -> std::io::Result<()> {
    serve_listener_guarded(engine, TcpListener::bind(addr)?, log, policy)
}

/// A registry of the open TCP connections of one serving loop, so shutdown
/// can wake every blocked handler *promptly* by closing its socket from the
/// accept side.  Handlers used to poll a stop flag on a 100ms read timeout,
/// which made every idle connection burn a wakeup per interval and
/// quantized shutdown latency to the poll period; with the registry, idle
/// connections cost zero CPU and shutdown is bounded only by a socket
/// close.
#[derive(Default)]
struct ConnRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    /// Set once the shutdown sweep ran; late registrations are closed on
    /// the spot so no handler can slip past the sweep and block forever.
    closed: bool,
    next_id: u64,
    conns: HashMap<u64, TcpStream>,
}

impl ConnRegistry {
    /// Track `stream` (a `try_clone` of the handler's socket).  Returns
    /// `None` — after shutting the stream down — when the registry already
    /// closed, so the caller's handler sees EOF immediately.
    fn register(&self, stream: TcpStream) -> Option<u64> {
        let mut inner = self.inner.lock();
        if inner.closed {
            let _ = stream.shutdown(Shutdown::Both);
            return None;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.conns.insert(id, stream);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.inner.lock().conns.remove(&id);
    }

    /// Close every registered connection and refuse future registrations.
    fn close_all(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        for stream in inner.conns.values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        inner.conns.clear();
    }
}

/// Bounded exponential backoff for `accept()` failures.
///
/// An `accept` that fails with EMFILE/ENFILE (fd exhaustion) fails again
/// immediately — the listener's backlog still holds the connection — so a
/// log-and-continue loop spins at 100% duty, starving the handler threads
/// of the very fds it is waiting for.  Sleeping a doubling, capped delay
/// between retries lets handlers finish and release fds.  Shared by the
/// blocking accept loop and the evented reactor (which turns the delay into
/// an epoll timeout instead of sleeping).
#[derive(Debug)]
pub(crate) struct AcceptBackoff {
    delay: Duration,
}

/// First retry delay after an `accept()` failure.
pub(crate) const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(5);
/// Largest delay between `accept()` retries.
pub(crate) const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

impl AcceptBackoff {
    pub(crate) fn new() -> Self {
        AcceptBackoff {
            delay: ACCEPT_BACKOFF_MIN,
        }
    }

    /// The delay to wait before the next accept attempt; doubles up to
    /// [`ACCEPT_BACKOFF_MAX`] on consecutive failures.
    pub(crate) fn next_delay(&mut self) -> Duration {
        let delay = self.delay;
        self.delay = (delay * 2).min(ACCEPT_BACKOFF_MAX);
        delay
    }

    /// A successful accept resets the ladder.
    pub(crate) fn reset(&mut self) {
        self.delay = ACCEPT_BACKOFF_MIN;
    }
}

/// The accept side of the blocking serving loop, abstracted so tests can
/// inject `accept()` failures (EMFILE and friends) that are otherwise
/// impossible to provoke deterministically.
pub(crate) trait AcceptSource {
    /// Accept one connection.
    fn accept_stream(&self) -> std::io::Result<TcpStream>;
}

impl AcceptSource for TcpListener {
    fn accept_stream(&self) -> std::io::Result<TcpStream> {
        self.accept().map(|(stream, _)| stream)
    }
}

/// Handle one TCP connection, returning `true` if this client issued
/// `shutdown`.  Reads block indefinitely: a shutdown initiated on *another*
/// connection wakes this handler by closing its socket through the
/// [`ConnRegistry`], so the read returns EOF at once instead of after a
/// poll interval.
fn serve_tcp_connection(
    engine: &Engine,
    stream: TcpStream,
    registry: &ConnRegistry,
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
) -> bool {
    let mut conn = ConnState::default();
    let registered = match stream.try_clone() {
        Ok(clone) => match registry.register(clone) {
            Some(id) => id,
            None => return false, // Shutdown won the race; hang up.
        },
        Err(_) => return false,
    };
    let shutdown = serve_registered_connection(engine, stream, log, policy, &mut conn);
    registry.deregister(registered);
    shutdown
}

fn serve_registered_connection(
    engine: &Engine,
    stream: TcpStream,
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
    conn: &mut ConnState,
) -> bool {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return false,
    });
    let mut writer = stream;
    // Partial lines survive short reads: `fill_line` appends raw bytes, so
    // a request split across packets is completed by later reads even when
    // the split lands inside a multi-byte UTF-8 character.  The buffer is
    // bounded by MAX_LINE_BYTES; overlong lines are answered with a
    // structured `line_too_long` error and drained.
    let mut line = Vec::new();
    let mut discarding = false;
    loop {
        match fill_line(&mut reader, &mut line) {
            Ok(LineStatus::Eof) => return false, // Hang-up or shutdown wake.
            Ok(LineStatus::FinalPartial) => return false, // EOF mid-line.
            Ok(LineStatus::Complete) => {
                if discarding {
                    discarding = false;
                    line.clear();
                    continue;
                }
                let outcome = match handle_line(engine, &line, log, policy, conn) {
                    Some(outcome) => outcome,
                    None => {
                        line.clear();
                        continue;
                    }
                };
                line.clear();
                if write_response(&mut writer, &outcome.response).is_err() {
                    return false;
                }
                if outcome.shutdown {
                    return true;
                }
            }
            Ok(LineStatus::TooLong) => {
                if !discarding {
                    let response = line_too_long_response(engine, MAX_LINE_BYTES);
                    if write_response(&mut writer, &response).is_err() {
                        return false;
                    }
                    discarding = true;
                }
                line.clear();
            }
            Err(_) => return false,
        }
    }
}

/// [`serve_tcp`] over an already-bound listener (useful for ephemeral-port
/// setups: bind first, advertise `local_addr`, then serve).
///
/// # Errors
/// Only listener-setup failures; per-connection accept errors (a client
/// resetting mid-handshake, transient resource exhaustion) are logged and
/// skipped so one flaky connect cannot tear down every other client's
/// session.
pub fn serve_listener(engine: &Engine, listener: TcpListener) -> std::io::Result<()> {
    serve_listener_with_log(engine, listener, None)
}

/// [`serve_listener`] with an attached [`EventLog`] for per-request events.
///
/// # Errors
/// Only listener-setup failures; per-connection accept errors are logged
/// and skipped.
pub fn serve_listener_with_log(
    engine: &Engine,
    listener: TcpListener,
    log: Option<&EventLog>,
) -> std::io::Result<()> {
    serve_listener_guarded(engine, listener, log, None)
}

/// [`serve_listener_with_log`] with an optional [`ClientPolicy`] screening
/// every connection.
///
/// # Errors
/// Only listener-setup failures; per-connection accept errors are logged
/// and skipped.
pub fn serve_listener_guarded(
    engine: &Engine,
    listener: TcpListener,
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
) -> std::io::Result<()> {
    let local = listener.local_addr()?;
    serve_accept_loop(engine, &listener, local, log, policy)
}

/// The blocking accept loop over any [`AcceptSource`] (production:
/// [`TcpListener`]; tests: sources that inject accept failures).
pub(crate) fn serve_accept_loop<A: AcceptSource + Sync>(
    engine: &Engine,
    source: &A,
    local: std::net::SocketAddr,
    log: Option<&EventLog>,
    policy: Option<&ClientPolicy>,
) -> std::io::Result<()> {
    let stop = AtomicBool::new(false);
    let registry = ConnRegistry::default();
    let mut backoff = AcceptBackoff::new();
    crossbeam::thread::scope(|scope| -> std::io::Result<()> {
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match source.accept_stream() {
                Ok(stream) => {
                    backoff.reset();
                    engine.metrics().incr(Counter::Connection);
                    stream
                }
                Err(error) => {
                    // EMFILE/ENFILE and friends fail again immediately, so
                    // a plain log-and-continue pegs a core while starving
                    // the handlers that would release fds.  Sleep a
                    // bounded, doubling delay instead.
                    engine.metrics().incr(Counter::AcceptRetry);
                    let delay = backoff.next_delay();
                    log_message(
                        log,
                        &format!(
                            "accept error (retrying in {}ms): {error}",
                            delay.as_millis()
                        ),
                    );
                    std::thread::sleep(delay);
                    continue;
                }
            };
            let stop = &stop;
            let registry = &registry;
            scope.spawn(move |_| {
                if serve_tcp_connection(engine, stream, registry, log, policy) {
                    stop.store(true, Ordering::SeqCst);
                    // Wake every blocked handler by closing its socket —
                    // idle connections notice the shutdown immediately
                    // instead of on a poll interval.
                    registry.close_all();
                    // Unblock the accept loop so the listener notices the
                    // shutdown flag.  When bound to an unspecified address
                    // (0.0.0.0 / ::), self-connect via the loopback of the
                    // same family — connecting to 0.0.0.0 fails on some
                    // platforms.
                    let mut wake = local;
                    if wake.ip().is_unspecified() {
                        wake.set_ip(match wake.ip() {
                            std::net::IpAddr::V4(_) => {
                                std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST)
                            }
                            std::net::IpAddr::V6(_) => {
                                std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST)
                            }
                        });
                    }
                    if let Err(error) = TcpStream::connect(wake) {
                        log_message(
                            log,
                            &format!(
                                "shutdown wake-up connect to {wake} failed ({error}); \
                                 the listener will close on the next incoming connection"
                            ),
                        );
                    }
                }
            });
        }
        Ok(())
    })
    .map_err(|_| std::io::Error::other(EngineError::Protocol("worker panicked".into())))?
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn run_script(engine: &Engine, script: &str) -> Vec<String> {
        let mut output = Vec::new();
        serve_lines(engine, Cursor::new(script.to_string()), &mut output).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn scripted_session_end_to_end() {
        let engine = Engine::new();
        let script = concat!(
            r#"{"cmd":"load_pool","pool":"p","scores":[0.95,0.9,0.8,0.2,0.15,0.1,0.05,0.02],"predictions":[true,true,true,false,false,false,false,false]}"#,
            "\n",
            r#"{"cmd":"create_session","session":"s","pool":"p","seed":42,"config":{"strata_count":4},"truth":[true,true,false,false,false,false,false,false]}"#,
            "\n",
            r#"{"cmd":"step","session":"s","steps":60}"#,
            "\n",
            r#"{"cmd":"estimate","session":"s"}"#,
            "\n",
            r#"{"cmd":"shutdown"}"#,
            "\n",
        );
        let responses = run_script(&engine, script);
        assert_eq!(responses.len(), 5);
        for response in &responses {
            assert!(response.starts_with(r#"{"#), "line: {response}");
            assert!(response.contains(r#""ok":true"#), "line: {response}");
        }
        assert!(responses[3].contains("f_measure"), "estimate line");
        assert!(responses[4].contains("shutdown"));
    }

    #[test]
    fn suspend_resume_over_the_wire() {
        let engine = Engine::new();
        // External session: propose returns tickets; labels come back by id.
        let setup = concat!(
            r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.7,0.3,0.1],"predictions":[true,true,false,false]}"#,
            "\n",
            r#"{"cmd":"create_session","session":"ext","pool":"p","seed":1,"config":{"strata_count":2}}"#,
            "\n",
            r#"{"cmd":"propose","session":"ext","count":2}"#,
            "\n",
        );
        let responses = run_script(&engine, setup);
        let proposal_line = &responses[2];
        assert!(proposal_line.contains(r#""proposals":["#));
        assert!(proposal_line.contains(r#""ticket":"0""#));
        assert!(proposal_line.contains(r#""ticket":"1""#));

        // Labels for both tickets resume the session.
        let resume = concat!(
            r#"{"cmd":"label","session":"ext","labels":[{"ticket":"0","label":true},{"ticket":"1","label":false}]}"#,
            "\n",
            r#"{"cmd":"estimate","session":"ext"}"#,
            "\n",
        );
        let responses = run_script(&engine, resume);
        assert!(responses[0].contains(r#""applied":2"#), "{}", responses[0]);
        assert!(responses[1].contains(r#""pending":0"#));
    }

    #[test]
    fn checkpoint_restore_over_the_wire_is_exact() {
        let engine = Engine::new();
        let setup = concat!(
            r#"{"cmd":"load_pool","pool":"p","scores":[0.95,0.85,0.75,0.45,0.25,0.15,0.1,0.05],"predictions":[true,true,true,false,false,false,false,false]}"#,
            "\n",
            r#"{"cmd":"create_session","session":"a","pool":"p","seed":9,"config":{"strata_count":3},"truth":[true,true,false,true,false,false,false,false]}"#,
            "\n",
            r#"{"cmd":"step","session":"a","steps":40}"#,
            "\n",
            r#"{"cmd":"checkpoint","session":"a"}"#,
            "\n",
        );
        let responses = run_script(&engine, setup);
        let checkpoint_line = &responses[3];
        let parsed = serde::json::Json::parse(checkpoint_line).unwrap();
        let checkpoint = parsed.require("checkpoint").unwrap().render();

        // Restore under a new name and continue both; estimates must agree.
        let restore_script = format!(
            "{}\n{}\n{}\n{}\n",
            format_args!(r#"{{"cmd":"restore","session":"b","checkpoint":{checkpoint}}}"#),
            r#"{"cmd":"step","session":"a","steps":40}"#,
            r#"{"cmd":"step","session":"b","steps":40}"#,
            r#"{"cmd":"sessions"}"#,
        );
        let responses = run_script(&engine, &restore_script);
        assert!(
            responses[0].contains(r#""restored":true"#),
            "{}",
            responses[0]
        );
        let estimate_a = serde::json::Json::parse(&responses[1]).unwrap();
        let estimate_b = serde::json::Json::parse(&responses[2]).unwrap();
        assert_eq!(
            estimate_a.require("estimate").unwrap().render(),
            estimate_b.require("estimate").unwrap().render(),
            "restored session must continue bit-identically"
        );
        assert!(responses[3].contains(r#""sessions":["a","b"]"#));
    }

    #[test]
    fn overlong_lines_are_rejected_without_unbounded_buffering() {
        // A line longer than MAX_LINE_BYTES gets one error response and is
        // discarded; the loop then serves the next request normally.
        let engine = Engine::new();
        let mut script = Vec::new();
        script.extend_from_slice(br#"{"cmd":"garbage-pad":""#);
        script.resize(MAX_LINE_BYTES + 1024, b'x');
        script.extend_from_slice(b"\"}\n{\"cmd\":\"sessions\"}\n");
        let mut output = Vec::new();
        serve_lines(&engine, Cursor::new(script), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one error + one normal response: {text}");
        assert!(lines[0].contains(r#""ok":false"#));
        assert!(
            lines[0].contains(r#""kind":"line_too_long""#),
            "framing overflow must be machine-distinguishable: {}",
            lines[0]
        );
        assert!(lines[0].contains("exceeds"));
        assert!(lines[1].contains(r#""ok":true"#));
        assert_eq!(engine.metrics().counter(Counter::LineTooLong), 1);
    }

    #[test]
    fn accept_backoff_doubles_and_resets() {
        let mut backoff = AcceptBackoff::new();
        assert_eq!(backoff.next_delay(), ACCEPT_BACKOFF_MIN);
        assert_eq!(backoff.next_delay(), ACCEPT_BACKOFF_MIN * 2);
        assert_eq!(backoff.next_delay(), ACCEPT_BACKOFF_MIN * 4);
        // The ladder is capped.
        for _ in 0..20 {
            backoff.next_delay();
        }
        assert_eq!(backoff.next_delay(), ACCEPT_BACKOFF_MAX);
        // One successful accept resets it.
        backoff.reset();
        assert_eq!(backoff.next_delay(), ACCEPT_BACKOFF_MIN);
    }

    /// An [`AcceptSource`] that fails its first N accepts with EMFILE, then
    /// delegates to a real listener — the fd-exhaustion scenario that a
    /// log-and-continue accept loop turns into a hot spin.
    struct FlakyListener {
        inner: TcpListener,
        failures: std::sync::atomic::AtomicUsize,
    }

    impl AcceptSource for FlakyListener {
        fn accept_stream(&self) -> std::io::Result<TcpStream> {
            if self
                .failures
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
            {
                // EMFILE: "Too many open files".
                return Err(std::io::Error::from_raw_os_error(24));
            }
            self.inner.accept_stream()
        }
    }

    #[test]
    fn accept_errors_back_off_instead_of_spinning() {
        use std::io::{BufRead as _, Write as _};

        const INJECTED_FAILURES: usize = 3;
        let engine = Engine::new();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let flaky = FlakyListener {
            inner: listener,
            failures: std::sync::atomic::AtomicUsize::new(INJECTED_FAILURES),
        };
        crossbeam::thread::scope(|scope| {
            let engine = &engine;
            let flaky = &flaky;
            let started = Instant::now();
            let server = scope.spawn(move |_| serve_accept_loop(engine, flaky, addr, None, None));

            // The client connects while the accepts are failing; the
            // listener backlog holds it until the backoff ladder admits it.
            let mut stream = loop {
                match TcpStream::connect(addr) {
                    Ok(stream) => break stream,
                    Err(_) => std::thread::yield_now(),
                }
            };
            stream
                .write_all(b"{\"cmd\":\"sessions\"}\n{\"cmd\":\"shutdown\"}\n")
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(r#""ok":true"#), "{line}");
            server.join().unwrap().unwrap();

            // Every injected failure took one bounded sleep (5+10+20ms)...
            assert!(
                started.elapsed() >= ACCEPT_BACKOFF_MIN * (INJECTED_FAILURES as u32 * 2 + 1),
                "backoff sleeps must actually elapse"
            );
            // ...and was counted.
            assert_eq!(
                engine.metrics().counter(Counter::AcceptRetry),
                INJECTED_FAILURES as u64
            );
            assert!(engine.metrics().counter(Counter::Connection) >= 1);
        })
        .unwrap();
    }

    #[test]
    fn json_log_emits_one_request_event_per_line() {
        use crate::log::LogFormat;
        use parking_lot::Mutex;
        use std::sync::Arc;

        #[derive(Clone, Default)]
        struct Buffer(Arc<Mutex<Vec<u8>>>);
        impl Write for Buffer {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let engine = Engine::new();
        let buffer = Buffer::default();
        let log = EventLog::to_writer(LogFormat::Json, Box::new(buffer.clone()));
        let script = concat!(
            r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.1],"predictions":[true,false]}"#,
            "\n",
            "garbage\n",
            r#"{"cmd":"estimate","session":"ghost"}"#,
            "\n",
        );
        let mut output = Vec::new();
        serve_lines_with_log(
            &engine,
            Cursor::new(script.to_string()),
            &mut output,
            Some(&log),
        )
        .unwrap();

        let events = String::from_utf8(buffer.0.lock().clone()).unwrap();
        let lines: Vec<&str> = events.lines().collect();
        assert_eq!(lines.len(), 3, "{events}");
        let ok = Json::parse(lines[0]).unwrap();
        assert_eq!(ok.require("verb").unwrap().as_str().unwrap(), "load_pool");
        assert!(ok.require("ok").unwrap().as_bool().unwrap());
        assert!(matches!(ok.require("session").unwrap(), Json::Null));
        let parse_error = Json::parse(lines[1]).unwrap();
        assert_eq!(
            parse_error.require("verb").unwrap().as_str().unwrap(),
            "parse_error"
        );
        assert!(!parse_error.require("ok").unwrap().as_bool().unwrap());
        let failed = Json::parse(lines[2]).unwrap();
        assert_eq!(
            failed.require("session").unwrap().as_str().unwrap(),
            "ghost"
        );
        assert!(!failed.require("ok").unwrap().as_bool().unwrap());
    }

    #[test]
    fn guarded_serving_requires_auth_and_recovers_after_rejections() {
        let engine = Engine::new();
        let policy = ClientPolicy::new().with_auth_token("secret");
        let script = concat!(
            r#"{"cmd":"sessions"}"#,
            "\n",
            r#"{"cmd":"auth","token":"wrong"}"#,
            "\n",
            r#"{"cmd":"auth","token":"secret"}"#,
            "\n",
            r#"{"cmd":"sessions"}"#,
            "\n",
        );
        let mut output = Vec::new();
        serve_lines_guarded(
            &engine,
            Cursor::new(script.to_string()),
            &mut output,
            None,
            Some(&policy),
        )
        .unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(
            lines[0].contains(r#""kind":"unauthorized""#),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains(r#""ok":false"#), "{}", lines[1]);
        assert!(lines[2].contains(r#""authenticated":true"#), "{}", lines[2]);
        assert!(lines[3].contains(r#""ok":true"#), "{}", lines[3]);
    }

    #[test]
    fn guarded_tcp_auth_state_is_per_connection() {
        use std::io::{BufRead as _, Write as _};

        let engine = Engine::new();
        let policy = ClientPolicy::new().with_auth_token("secret");
        crossbeam::thread::scope(|scope| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let engine = &engine;
            let policy = &policy;
            let server =
                scope.spawn(move |_| serve_listener_guarded(engine, listener, None, Some(policy)));

            let mut first = loop {
                match TcpStream::connect(addr) {
                    Ok(stream) => break stream,
                    Err(_) => std::thread::yield_now(),
                }
            };
            first
                .write_all(b"{\"cmd\":\"auth\",\"token\":\"secret\"}\n{\"cmd\":\"sessions\"}\n")
                .unwrap();
            let mut reader = BufReader::new(first.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(r#""authenticated":true"#), "{line}");
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(r#""ok":true"#), "{line}");

            // A second connection does NOT inherit the first's auth.
            let mut second = TcpStream::connect(addr).unwrap();
            second.write_all(b"{\"cmd\":\"sessions\"}\n").unwrap();
            let mut reader2 = BufReader::new(second.try_clone().unwrap());
            line.clear();
            reader2.read_line(&mut line).unwrap();
            assert!(line.contains(r#""kind":"unauthorized""#), "{line}");

            // The authenticated connection shuts the server down.
            first.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(r#""shutdown":true"#), "{line}");
            server.join().unwrap().unwrap();
            drop(second);
        })
        .unwrap();
    }

    #[test]
    fn malformed_lines_do_not_wedge_the_loop() {
        let engine = Engine::new();
        let script = "garbage\n{\"cmd\":\"sessions\"}\n";
        let responses = run_script(&engine, script);
        assert_eq!(responses.len(), 2);
        assert!(responses[0].contains(r#""ok":false"#));
        assert!(responses[1].contains(r#""ok":true"#));
    }

    #[test]
    fn shutdown_closes_idle_connections() {
        use std::io::{BufRead as _, Write as _};

        let engine = Engine::new();
        crossbeam::thread::scope(|scope| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let engine = &engine;
            let server = scope.spawn(move |_| serve_listener(engine, listener));

            // An idle client that connects and never sends a byte.
            let idle = loop {
                match TcpStream::connect(addr) {
                    Ok(stream) => break stream,
                    Err(_) => std::thread::yield_now(),
                }
            };
            // A second client shuts the server down.
            let mut active = TcpStream::connect(addr).unwrap();
            active.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
            let mut reader = BufReader::new(active.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(r#""shutdown":true"#));

            // The server must return even though the idle client is still
            // connected — the registry closes its socket from the accept
            // side, so shutdown is bounded by a socket close, not a poll
            // interval.
            let waited = Instant::now();
            server.join().unwrap().unwrap();
            assert!(
                waited.elapsed() < Duration::from_millis(100),
                "shutdown must not wait on idle-connection polling (took {:?})",
                waited.elapsed()
            );
            drop(idle);
        })
        .unwrap();
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead as _, BufReader, Write as _};
        use std::net::TcpStream;

        let engine = Engine::new();
        crossbeam::thread::scope(|scope| {
            // Bind on an ephemeral port, then serve from a scoped thread.
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let engine = &engine;
            let server = scope.spawn(move |_| serve_listener(engine, listener));

            // Client: retry connect until the server is listening.
            let mut stream = loop {
                match TcpStream::connect(addr) {
                    Ok(stream) => break stream,
                    Err(_) => std::thread::yield_now(),
                }
            };
            stream
                .write_all(b"{\"cmd\":\"sessions\"}\n{\"cmd\":\"shutdown\"}\n")
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(r#""ok":true"#));
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains(r#""shutdown":true"#));
            server.join().unwrap().unwrap();
        })
        .unwrap();
    }
}
