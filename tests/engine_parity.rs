//! Workspace-level acceptance tests for `oasis-engine`: N concurrent engine
//! sessions with fixed seeds must be bit-identical to N sequential library
//! runs with the same seeds, through both the Rust API and the line
//! protocol — for every sampling method, not just OASIS.

use er_core::datasets::score_model::{DirectPoolConfig, DirectPoolModel};
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::{AnySampler, OasisConfig, OasisSampler, Sampler, SamplerMethod};
use oasis::{ConfidenceInterval, Estimate, TrackedSampler};
use oasis_engine::server::serve_lines;
use oasis_engine::{Engine, FsCheckpointStore, LabelSource, SessionJob};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Cursor;
use std::sync::Arc;

fn fixed_pool() -> (oasis::ScoredPool, Vec<bool>) {
    let config = DirectPoolConfig {
        pool_size: 3000,
        match_count: 80,
        match_logit_mean: 1.1,
        non_match_logit_mean: -2.8,
        logit_noise: 1.3,
        decision_threshold: 0.5,
        uncalibrated_scores: false,
    };
    let mut rng = StdRng::seed_from_u64(555);
    DirectPoolModel::new(config).generate(&mut rng)
}

fn library_run(pool: &oasis::ScoredPool, truth: &[bool], seed: u64, steps: usize) -> Estimate {
    let mut oracle = GroundTruthOracle::new(truth.to_vec());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sampler =
        OasisSampler::new(pool, OasisConfig::default().with_strata_count(20)).unwrap();
    sampler.run(pool, &mut oracle, &mut rng, steps).unwrap()
}

/// Library reference for an arbitrary method via the same `AnySampler::build`
/// path the engine uses.
fn library_run_method(
    pool: &oasis::ScoredPool,
    truth: &[bool],
    method: SamplerMethod,
    seed: u64,
    steps: usize,
) -> Estimate {
    let mut oracle = GroundTruthOracle::new(truth.to_vec());
    let mut rng = StdRng::seed_from_u64(seed);
    let config = OasisConfig::default().with_strata_count(20);
    let mut sampler = AnySampler::build(method, pool, &config).unwrap();
    sampler.run(pool, &mut oracle, &mut rng, steps).unwrap()
}

#[test]
fn eight_concurrent_sessions_match_eight_sequential_library_runs() {
    let (pool, truth) = fixed_pool();
    let seeds: Vec<u64> = (300..308).collect();
    let steps = 250;

    let references: Vec<Estimate> = seeds
        .iter()
        .map(|&seed| library_run(&pool, &truth, seed, steps))
        .collect();

    let engine = Engine::new();
    engine.load_pool("pool", pool).unwrap();
    for &seed in &seeds {
        engine
            .create_session(
                format!("s{seed}"),
                "pool",
                SamplerMethod::Oasis,
                OasisConfig::default().with_strata_count(20),
                seed,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone())),
            )
            .unwrap();
    }
    let jobs: Vec<SessionJob> = seeds
        .iter()
        .map(|&seed| SessionJob::Steps {
            session: format!("s{seed}"),
            steps,
        })
        .collect();
    // 8 workers: every session gets its own thread; interleaving must not
    // matter because sessions share nothing mutable.
    let estimates = engine.run_parallel(&jobs, 8).unwrap();

    for ((reference, estimate), seed) in references.iter().zip(&estimates).zip(&seeds) {
        assert_eq!(
            reference.f_measure.to_bits(),
            estimate.f_measure.to_bits(),
            "seed {seed}: engine F {} != library F {}",
            estimate.f_measure,
            reference.f_measure
        );
        assert_eq!(reference.precision.to_bits(), estimate.precision.to_bits());
        assert_eq!(reference.recall.to_bits(), estimate.recall.to_bits());
    }
}

#[test]
fn a_mixed_method_fleet_matches_sequential_library_runs() {
    // One engine, all four methods concurrently — the redesign's point: the
    // session/worker machinery is method-agnostic and changes nothing.
    let (pool, truth) = fixed_pool();
    let steps = 220;
    let seed = 640;

    let references: Vec<(SamplerMethod, Estimate)> = SamplerMethod::ALL
        .iter()
        .map(|&method| {
            (
                method,
                library_run_method(&pool, &truth, method, seed, steps),
            )
        })
        .collect();

    let engine = Engine::new();
    engine.load_pool("pool", pool).unwrap();
    for &(method, _) in &references {
        engine
            .create_session(
                method.as_str(),
                "pool",
                method,
                OasisConfig::default().with_strata_count(20),
                seed,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone())),
            )
            .unwrap();
    }
    let jobs: Vec<SessionJob> = references
        .iter()
        .map(|&(method, _)| SessionJob::Steps {
            session: method.as_str().to_string(),
            steps,
        })
        .collect();
    let estimates = engine.run_parallel(&jobs, 4).unwrap();

    for ((method, reference), estimate) in references.iter().zip(&estimates) {
        assert_eq!(
            reference.f_measure.to_bits(),
            estimate.f_measure.to_bits(),
            "{method}: engine F {} != library F {}",
            estimate.f_measure,
            reference.f_measure
        );
        assert_eq!(reference.precision.to_bits(), estimate.precision.to_bits());
        assert_eq!(reference.recall.to_bits(), estimate.recall.to_bits());
    }
}

fn render_bools(bits: &[bool]) -> String {
    let items: Vec<&str> = bits
        .iter()
        .map(|&b| if b { "true" } else { "false" })
        .collect();
    format!("[{}]", items.join(","))
}

fn run_script(engine: &Engine, script: &str) -> Vec<String> {
    let mut output = Vec::new();
    serve_lines(engine, Cursor::new(script.to_string()), &mut output).unwrap();
    String::from_utf8(output)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

fn estimate_bits_of(line: &str) -> (u64, u64, u64) {
    let response = serde::json::Json::parse(line).unwrap();
    let estimate = response.require("estimate").unwrap();
    let f = estimate.require("f_measure").unwrap().as_f64().unwrap();
    let p = estimate.require("precision").unwrap().as_f64().unwrap();
    let r = estimate.require("recall").unwrap().as_f64().unwrap();
    (f.to_bits(), p.to_bits(), r.to_bits())
}

#[test]
fn the_line_protocol_reproduces_a_library_run() {
    // Drive a full session through the wire protocol (the same path the
    // `oasis-serve` binary and the CI smoke test use) and compare the final
    // estimate line to the in-process library run, digit for digit.
    let (pool, truth) = fixed_pool();
    let expected = library_run(&pool, &truth, 777, 200);

    let scores: Vec<String> = pool.scores().iter().map(|s| format!("{s:?}")).collect();
    let script = format!(
        concat!(
            r#"{{"cmd":"load_pool","pool":"p","scores":[{scores}],"predictions":{predictions}}}"#,
            "\n",
            r#"{{"cmd":"create_session","session":"s","pool":"p","seed":777,"config":{{"strata_count":20}},"truth":{truth}}}"#,
            "\n",
            r#"{{"cmd":"step","session":"s","steps":200}}"#,
            "\n",
        ),
        scores = scores.join(","),
        predictions = render_bools(pool.predictions()),
        truth = render_bools(&truth),
    );

    let engine = Engine::new();
    let responses = run_script(&engine, &script);
    let last_line = responses.last().unwrap();
    assert!(last_line.contains(r#""ok":true"#), "line: {last_line}");
    let (f, p, r) = estimate_bits_of(last_line);
    assert_eq!(f, expected.f_measure.to_bits());
    assert_eq!(p, expected.precision.to_bits());
    assert_eq!(r, expected.recall.to_bits());
}

#[test]
fn every_method_checkpoints_and_resumes_bitwise_over_the_wire() {
    // The acceptance bar of the InteractiveSampler redesign: for each of the
    // four methods, drive create → step → checkpoint → restore → continue
    // entirely through the wire protocol, and land bit-identically on the
    // estimate of an uninterrupted in-process library run at the same seed.
    let (pool, truth) = fixed_pool();
    let steps_total = 180;
    let steps_first = 67;
    let seed = 4242;

    let scores: Vec<String> = pool.scores().iter().map(|s| format!("{s:?}")).collect();
    let engine = Engine::new();
    let load = format!(
        r#"{{"cmd":"load_pool","pool":"p","scores":[{}],"predictions":{}}}"#,
        scores.join(","),
        render_bools(pool.predictions()),
    );
    let responses = run_script(&engine, &format!("{load}\n"));
    assert!(responses[0].contains(r#""ok":true"#));

    for method in SamplerMethod::ALL {
        let expected = library_run_method(&pool, &truth, method, seed, steps_total);

        let m = method.as_str();
        let setup = format!(
            concat!(
                r#"{{"cmd":"create_session","session":"{m}","pool":"p","seed":{seed},"method":"{m}","config":{{"strata_count":20}},"truth":{truth}}}"#,
                "\n",
                r#"{{"cmd":"step","session":"{m}","steps":{first}}}"#,
                "\n",
                r#"{{"cmd":"checkpoint","session":"{m}"}}"#,
                "\n",
                r#"{{"cmd":"delete_session","session":"{m}"}}"#,
                "\n",
            ),
            m = m,
            seed = seed,
            first = steps_first,
            truth = render_bools(&truth),
        );
        let responses = run_script(&engine, &setup);
        for response in &responses {
            assert!(response.contains(r#""ok":true"#), "{m}: {response}");
        }
        assert!(
            responses[0].contains(&format!(r#""method":"{m}""#)),
            "{m}: {}",
            responses[0]
        );
        let checkpoint_doc = serde::json::Json::parse(&responses[2])
            .unwrap()
            .require("checkpoint")
            .unwrap()
            .render();
        assert!(
            checkpoint_doc.contains(&format!(r#""method":"{m}""#)),
            "{m}: tagged sampler state expected in checkpoint"
        );

        let resume = format!(
            concat!(
                r#"{{"cmd":"restore","session":"{m}2","checkpoint":{doc}}}"#,
                "\n",
                r#"{{"cmd":"step","session":"{m}2","steps":{rest}}}"#,
                "\n",
            ),
            m = m,
            doc = checkpoint_doc,
            rest = steps_total - steps_first,
        );
        let responses = run_script(&engine, &resume);
        assert!(responses[0].contains(r#""restored":true"#), "{m}");
        let (f, p, r) = estimate_bits_of(&responses[1]);
        assert_eq!(f, expected.f_measure.to_bits(), "{m}: F drifted");
        assert_eq!(p, expected.precision.to_bits(), "{m}: P drifted");
        assert_eq!(r, expected.recall.to_bits(), "{m}: R drifted");
    }
}

/// Library reference that also carries the variance tracker, so the wire
/// tests can compare confidence-interval bits — not just point estimates.
fn tracked_library_run(
    pool: &oasis::ScoredPool,
    truth: &[bool],
    seed: u64,
    steps: usize,
) -> (Estimate, ConfidenceInterval) {
    let mut oracle = GroundTruthOracle::new(truth.to_vec());
    let mut rng = StdRng::seed_from_u64(seed);
    let config = OasisConfig::default().with_strata_count(20);
    let mut sampler = TrackedSampler::new(
        AnySampler::build(SamplerMethod::Oasis, pool, &config).unwrap(),
        config.alpha,
    );
    let estimate = sampler.run(pool, &mut oracle, &mut rng, steps).unwrap();
    let interval = sampler.confidence_interval(0.95).unwrap();
    (estimate, interval)
}

fn ci_bits_of(line: &str) -> (u64, u64, u64) {
    let response = serde::json::Json::parse(line).unwrap();
    let interval = response.require("confidence_interval").unwrap();
    let lower = interval.require("lower").unwrap().as_f64().unwrap();
    let upper = interval.require("upper").unwrap().as_f64().unwrap();
    let se = interval
        .require("standard_error")
        .unwrap()
        .as_f64()
        .unwrap();
    (lower.to_bits(), upper.to_bits(), se.to_bits())
}

#[test]
fn kill_and_replay_through_a_shared_store_matches_an_uninterrupted_run() {
    // The durability acceptance bar, driven entirely over the wire: serve one
    // connection against a store-backed engine, durably checkpoint mid-run,
    // keep stepping (those batches only reach the write-ahead log), then drop
    // the engine without a final checkpoint — a crash.  A fresh engine over
    // the same store directory must rebuild the session from
    // `checkpoint + WAL suffix` and land bit-identically — estimate AND
    // confidence interval — on an uninterrupted library run.
    let (pool, truth) = fixed_pool();
    let seed = 9090;
    let (expected, expected_interval) = tracked_library_run(&pool, &truth, seed, 200);

    let dir = std::env::temp_dir().join(format!("oasis-parity-kill-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let scores: Vec<String> = pool.scores().iter().map(|s| format!("{s:?}")).collect();
    let load = format!(
        r#"{{"cmd":"load_pool","pool":"p","scores":[{}],"predictions":{}}}"#,
        scores.join(","),
        render_bools(pool.predictions()),
    );

    // First incarnation: 120 steps, durable checkpoint, 80 more steps that
    // live only in the WAL, then the engine is dropped mid-flight.
    {
        let store = Arc::new(FsCheckpointStore::open(&dir).unwrap());
        let engine = Engine::new().with_store(store);
        let script = format!(
            concat!(
                "{load}\n",
                r#"{{"cmd":"create_session","session":"s","pool":"p","seed":{seed},"config":{{"strata_count":20}},"truth":{truth}}}"#,
                "\n",
                r#"{{"cmd":"step","session":"s","steps":120}}"#,
                "\n",
                r#"{{"cmd":"checkpoint_to","session":"s"}}"#,
                "\n",
                r#"{{"cmd":"step","session":"s","steps":80}}"#,
                "\n",
            ),
            load = load,
            seed = seed,
            truth = render_bools(&truth),
        );
        let responses = run_script(&engine, &script);
        for response in &responses {
            assert!(response.contains(r#""ok":true"#), "{response}");
        }
        assert!(responses[3].contains(r#""wal_seq":"#), "{}", responses[3]);
    }

    // Second incarnation: same directory, fresh engine and pool load (pools
    // are not durable — clients reload them).  `restore_from` replays the
    // checkpoint plus the one logged step batch.
    let store = Arc::new(FsCheckpointStore::open(&dir).unwrap());
    let engine = Engine::new().with_store(store);
    let script = format!(
        concat!(
            "{load}\n",
            r#"{{"cmd":"restore_from","session":"s"}}"#,
            "\n",
            r#"{{"cmd":"estimate","session":"s"}}"#,
            "\n",
        ),
        load = load,
    );
    let responses = run_script(&engine, &script);
    assert!(
        responses[1].contains(r#""restored":true"#) && responses[1].contains(r#""replayed":1"#),
        "{}",
        responses[1]
    );
    let (f, p, r) = estimate_bits_of(&responses[2]);
    assert_eq!(f, expected.f_measure.to_bits(), "F drifted across replay");
    assert_eq!(p, expected.precision.to_bits(), "P drifted across replay");
    assert_eq!(r, expected.recall.to_bits(), "R drifted across replay");
    assert!(responses[2].contains(r#""variance_tracked":true"#));
    let (lower, upper, se) = ci_bits_of(&responses[2]);
    assert_eq!(lower, expected_interval.lower.to_bits(), "CI lower drifted");
    assert_eq!(upper, expected_interval.upper.to_bits(), "CI upper drifted");
    assert_eq!(se, expected_interval.standard_error.to_bits());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_and_restore_failures_are_structured_wire_errors() {
    // Durability failure modes must come back as `ok:false` protocol errors
    // on a live connection — never a panic, never a dropped connection.
    let dir =
        std::env::temp_dir().join(format!("oasis-parity-store-errors-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(FsCheckpointStore::open(&dir).unwrap());
    let engine = Engine::new().with_store(store);
    let script = concat!(
        r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.7,0.3,0.1],"predictions":[true,true,false,false]}"#,
        "\n",
        // Nothing stored under this id yet.
        r#"{"cmd":"restore_from","session":"ghost"}"#,
        "\n",
        r#"{"cmd":"sessions"}"#,
        "\n",
    );
    let responses = run_script(&engine, script);
    assert_eq!(responses.len(), 3, "every request gets a response");
    assert!(
        responses[1].contains(r#""ok":false"#) && responses[1].contains("ghost"),
        "{}",
        responses[1]
    );
    assert!(responses[2].contains(r#""ok":true"#), "{}", responses[2]);

    // Without a store attached, both durability verbs are structured errors.
    let bare = Engine::new();
    let script = concat!(
        r#"{"cmd":"checkpoint_to","session":"s"}"#,
        "\n",
        r#"{"cmd":"restore_from","session":"s"}"#,
        "\n",
    );
    let responses = run_script(&bare, script);
    for response in &responses {
        assert!(
            response.contains(r#""ok":false"#) && response.contains("store"),
            "{response}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_methods_and_duplicate_sessions_are_structured_wire_errors() {
    let engine = Engine::new();
    let script = concat!(
        r#"{"cmd":"load_pool","pool":"p","scores":[0.9,0.7,0.3,0.1],"predictions":[true,true,false,false]}"#,
        "\n",
        r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"method":"bogus"}"#,
        "\n",
        r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"config":{"strata_count":2}}"#,
        "\n",
        r#"{"cmd":"create_session","session":"s","pool":"p","seed":1,"config":{"strata_count":2}}"#,
        "\n",
        r#"{"cmd":"sessions"}"#,
        "\n",
    );
    let responses = run_script(&engine, script);
    assert_eq!(responses.len(), 5, "every request gets a response");
    assert!(responses[1].contains(r#""ok":false"#) && responses[1].contains("bogus"));
    assert!(responses[2].contains(r#""ok":true"#));
    assert!(responses[3].contains(r#""ok":false"#) && responses[3].contains("already exists"));
    // The connection survived both errors.
    assert!(responses[4].contains(r#""sessions":["s"]"#));
}
