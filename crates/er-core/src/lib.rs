//! # er-core — entity-resolution substrate
//!
//! The substrate the OASIS paper evaluates against: a complete (if compact)
//! entity-resolution pipeline, built from scratch.
//!
//! * [`record`] — records, schemas and field values for the two data sources.
//! * [`normalize`] — the pre-processing stage: string canonicalisation and
//!   numeric imputation (paper Section 6.1.2, "Pre-processing").
//! * [`similarity`] — attribute-level similarity measures: trigram Jaccard,
//!   tf–idf cosine, Levenshtein/Jaro–Winkler, normalised numeric difference.
//! * [`features`] — turning a record pair into a similarity feature vector.
//! * [`blocking`] — token blocking and sorted-neighbourhood candidate
//!   generation (the "blocking" pipeline stage).
//! * [`pairs`] — candidate pair spaces (full product or blocked) with ground
//!   truth bookkeeping.
//! * [`datasets`] — synthetic dataset generators whose pools mirror the
//!   sizes, class imbalances and match counts of the paper's six datasets
//!   (Tables 1 and 2).  These stand in for the proprietary/downloaded
//!   datasets; see `DESIGN.md` for the substitution argument.
//! * [`pool_builder`] — assembling an [`oasis::ScoredPool`] plus hidden ground
//!   truth from a dataset and a scoring function.
//! * [`io`] — loading and saving record sources as tab/comma-separated text,
//!   so real catalogues can be evaluated with the same pipeline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod blocking;
pub mod datasets;
pub mod error_text;
pub mod features;
pub mod io;
pub mod normalize;
pub mod pairs;
pub mod pool_builder;
pub mod record;
pub mod similarity;

pub use datasets::{DatasetProfile, SyntheticDataset};
pub use features::FeatureExtractor;
pub use pairs::{PairSpace, RecordPair};
pub use pool_builder::{LabelledPool, PoolBuilder};
pub use record::{FieldType, FieldValue, Record, Schema};
