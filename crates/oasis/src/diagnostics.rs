//! Convergence diagnostics (paper Section 6.3.3, Figure 4).
//!
//! These helpers quantify how quickly OASIS's internal model approaches the
//! quantities it is estimating: the per-stratum oracle probabilities `π`, the
//! asymptotically optimal instrumental distribution `v*`, and the F-measure
//! itself.  They are *evaluation-of-the-evaluator* tools: they require ground
//! truth, so they are only available in simulation studies.

use crate::instrumental::stratified_optimal;
use crate::measures::exhaustive_measures;
use crate::pool::ScoredPool;
use crate::strata::Strata;

/// Mean absolute error between two equally long vectors.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
pub fn mean_absolute_error(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "length mismatch");
    assert!(!estimate.is_empty(), "empty vectors");
    let total: f64 = estimate
        .iter()
        .zip(truth.iter())
        .map(|(&e, &t)| (e - t).abs())
        .sum();
    total / estimate.len() as f64
}

/// Kullback–Leibler divergence `KL(p ‖ q)` in nats between two discrete
/// distributions over the same support.
///
/// Entries where `p = 0` contribute nothing.  If some `p > 0` has `q = 0` the
/// divergence is `+∞`, which the ε-greedy construction prevents in practice.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "length mismatch");
    let mut total = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        if pi > 0.0 {
            if qi > 0.0 {
                total += pi * (pi / qi).ln();
            } else {
                return f64::INFINITY;
            }
        }
    }
    total
}

/// Ground-truth reference quantities for a pool + stratification, used to
/// score the convergence of OASIS's internal estimates (paper Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct OracleReference {
    /// True per-stratum match rates `π` (with a deterministic oracle).
    pub true_pi: Vec<f64>,
    /// True F-measure on the pool.
    pub true_f_measure: f64,
    /// The asymptotically optimal stratified instrumental distribution `v*`
    /// evaluated at the *true* `π` and `F_α`.
    pub optimal_v: Vec<f64>,
    /// The α at which the reference was computed.
    pub alpha: f64,
}

impl OracleReference {
    /// Compute the reference quantities from full ground truth.
    ///
    /// # Panics
    /// Panics if `truth.len() != pool.len()`.
    pub fn compute(pool: &ScoredPool, strata: &Strata, truth: &[bool], alpha: f64) -> Self {
        assert_eq!(pool.len(), truth.len(), "truth must cover the whole pool");
        let true_pi = strata.true_match_rates(truth);
        let true_f = exhaustive_measures(pool.predictions(), truth, alpha).f_measure;
        let optimal_v = stratified_optimal(
            strata.weights(),
            strata.mean_predictions(),
            &true_pi,
            true_f,
            alpha,
        );
        OracleReference {
            true_pi,
            true_f_measure: true_f,
            optimal_v,
            alpha,
        }
    }

    /// Mean absolute error of a π estimate against the true per-stratum rates.
    pub fn pi_error(&self, pi_estimate: &[f64]) -> f64 {
        mean_absolute_error(pi_estimate, &self.true_pi)
    }

    /// Mean absolute error of an instrumental-distribution estimate against
    /// the optimal `v*`.
    pub fn v_error(&self, v_estimate: &[f64]) -> f64 {
        mean_absolute_error(v_estimate, &self.optimal_v)
    }

    /// KL divergence from the optimal `v*` to an estimate (paper Figure 4d,
    /// "KL divergence from v* to v̂": zero iff the estimate has converged).
    pub fn v_kl_divergence(&self, v_estimate: &[f64]) -> f64 {
        kl_divergence(&self.optimal_v, v_estimate)
    }

    /// Absolute error of an F-measure estimate against the pool truth.
    pub fn f_error(&self, f_estimate: f64) -> f64 {
        (f_estimate - self.true_f_measure).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strata::{CsfStratifier, Stratifier};

    fn toy_pool() -> (ScoredPool, Vec<bool>) {
        let scores = vec![0.95, 0.9, 0.85, 0.6, 0.4, 0.2, 0.1, 0.05, 0.02, 0.01];
        let predictions = vec![
            true, true, true, true, false, false, false, false, false, false,
        ];
        let truth = vec![
            true, true, false, true, false, false, false, false, false, false,
        ];
        (ScoredPool::new(scores, predictions).unwrap(), truth)
    }

    #[test]
    fn mae_basic() {
        assert!((mean_absolute_error(&[1.0, 2.0], &[0.0, 4.0]) - 1.5).abs() < 1e-12);
        assert_eq!(mean_absolute_error(&[0.5], &[0.5]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mae_rejects_length_mismatch() {
        mean_absolute_error(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn kl_divergence_properties() {
        let p = [0.5, 0.3, 0.2];
        assert!((kl_divergence(&p, &p)).abs() < 1e-15, "KL(p‖p) = 0");
        let q = [0.4, 0.4, 0.2];
        let d = kl_divergence(&p, &q);
        assert!(d > 0.0);
        // Zero q mass where p has mass → infinite divergence.
        assert!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]).is_infinite());
        // Zero p mass entries are ignored.
        assert!((kl_divergence(&[1.0, 0.0], &[0.5, 0.5]) - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn reference_quantities_match_ground_truth() {
        let (pool, truth) = toy_pool();
        let strata = CsfStratifier::new(3).stratify(&pool).unwrap();
        let reference = OracleReference::compute(&pool, &strata, &truth, 0.5);
        // True F: TP=3, FP=1, FN=0 → P=0.75, R=1 → F=6/7
        assert!((reference.true_f_measure - 6.0 / 7.0).abs() < 1e-12);
        assert_eq!(reference.true_pi.len(), strata.len());
        assert!((reference.optimal_v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Perfect estimates score zero error.
        assert_eq!(reference.pi_error(&reference.true_pi), 0.0);
        assert_eq!(reference.v_error(&reference.optimal_v), 0.0);
        assert!(reference.v_kl_divergence(&reference.optimal_v) < 1e-12);
        assert_eq!(reference.f_error(6.0 / 7.0), 0.0);
        assert!(reference.f_error(0.5) > 0.0);
    }

    #[test]
    fn worse_estimates_score_larger_errors() {
        let (pool, truth) = toy_pool();
        let strata = CsfStratifier::new(3).stratify(&pool).unwrap();
        let reference = OracleReference::compute(&pool, &strata, &truth, 0.5);
        let slightly_off: Vec<f64> = reference
            .true_pi
            .iter()
            .map(|&p| (p + 0.05).min(1.0))
            .collect();
        let badly_off: Vec<f64> = reference
            .true_pi
            .iter()
            .map(|&p| (p + 0.3).min(1.0))
            .collect();
        assert!(reference.pi_error(&slightly_off) < reference.pi_error(&badly_off));
        let uniform = vec![1.0 / strata.len() as f64; strata.len()];
        assert!(reference.v_kl_divergence(&uniform) > 0.0);
    }
}
