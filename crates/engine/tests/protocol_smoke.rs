//! The scripted protocol session CI pipes into the `oasis-serve` binary,
//! run here through `serve_lines` so `cargo test` enforces the same pinned
//! output locally.  If this test needs a new golden value, update the
//! matching `grep` in `.github/workflows/ci.yml` too.

use oasis_engine::server::serve_lines;
use oasis_engine::Engine;
use std::io::Cursor;

const SMOKE_SCRIPT: &str = include_str!("smoke/session.jsonl");

/// Golden F-measure for the smoke session (pool + seed are fixed, all
/// arithmetic is deterministic IEEE-754 — no libm in the calibrated-score
/// path — so this is stable across platforms).
const GOLDEN_ESTIMATE_FRAGMENT: &str = r#""f_measure":0.8605922932779813"#;

#[test]
fn scripted_smoke_session_reproduces_the_golden_estimate_line() {
    let engine = Engine::new();
    let mut output = Vec::new();
    let shutdown = serve_lines(&engine, Cursor::new(SMOKE_SCRIPT), &mut output).unwrap();
    assert!(shutdown, "the script ends with a shutdown command");

    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "one response per request:\n{text}");
    for line in &lines {
        assert!(line.contains(r#""ok":true"#), "failed response: {line}");
    }
    let estimate_line = lines[3];
    assert!(
        estimate_line.contains(GOLDEN_ESTIMATE_FRAGMENT),
        "estimate drifted from golden: {estimate_line}"
    );
    assert!(estimate_line.contains(r#""labels_consumed":10"#));
}
