//! Numeric field similarity.

/// Normalised absolute difference turned into a similarity:
/// `1 − |a − b| / max(|a|, |b|)`, clamped to `[0, 1]`.
///
/// Two zeros are identical (similarity 1).  Values of opposite sign are
/// maximally dissimilar (similarity 0).
pub fn normalized_numeric_similarity(a: f64, b: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / scale).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_score_one() {
        assert_eq!(normalized_numeric_similarity(5.0, 5.0), 1.0);
        assert_eq!(normalized_numeric_similarity(0.0, 0.0), 1.0);
        assert_eq!(normalized_numeric_similarity(-3.2, -3.2), 1.0);
    }

    #[test]
    fn close_prices_score_high() {
        let s = normalized_numeric_similarity(100.0, 105.0);
        assert!(s > 0.9, "similarity {s}");
    }

    #[test]
    fn distant_values_score_low() {
        let s = normalized_numeric_similarity(10.0, 1000.0);
        assert!(s < 0.05, "similarity {s}");
    }

    #[test]
    fn opposite_signs_clamp_to_zero() {
        assert_eq!(normalized_numeric_similarity(-50.0, 50.0), 0.0);
    }

    #[test]
    fn symmetry_and_range() {
        let values = [-100.0, -1.0, 0.0, 0.5, 3.0, 250.0];
        for &a in &values {
            for &b in &values {
                let ab = normalized_numeric_similarity(a, b);
                let ba = normalized_numeric_similarity(b, a);
                assert!((ab - ba).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&ab));
            }
        }
    }
}
