//! tf–idf cosine similarity for long textual fields.
//!
//! The vectoriser is fit on a corpus (typically the union of both sources'
//! long-text fields) so that document frequencies — and hence idf weights —
//! reflect the data being matched, exactly as a scikit-learn
//! `TfidfVectorizer` would be used in the paper's pipeline.

use std::collections::HashMap;

/// A fitted tf–idf vectoriser over a whitespace-tokenised corpus.
#[derive(Debug, Clone)]
pub struct TfIdfVectorizer {
    /// Token → (vocabulary index, idf weight).
    vocabulary: HashMap<String, (usize, f64)>,
    document_count: usize,
}

impl TfIdfVectorizer {
    /// Fit the vectoriser on a corpus of documents.
    pub fn fit<S: AsRef<str>>(corpus: &[S]) -> Self {
        let mut document_frequency: HashMap<String, usize> = HashMap::new();
        for doc in corpus {
            let mut seen: HashMap<&str, ()> = HashMap::new();
            for token in doc.as_ref().split_whitespace() {
                if seen.insert(token, ()).is_none() {
                    *document_frequency.entry(token.to_string()).or_insert(0) += 1;
                }
            }
        }
        let n_docs = corpus.len().max(1);
        let mut vocabulary = HashMap::with_capacity(document_frequency.len());
        for (index, (token, df)) in document_frequency.into_iter().enumerate() {
            // Smoothed idf, as in scikit-learn: ln((1 + n) / (1 + df)) + 1.
            let idf = ((1.0 + n_docs as f64) / (1.0 + df as f64)).ln() + 1.0;
            vocabulary.insert(token, (index, idf));
        }
        TfIdfVectorizer {
            vocabulary,
            document_count: n_docs,
        }
    }

    /// Number of documents the vectoriser was fit on.
    pub fn document_count(&self) -> usize {
        self.document_count
    }

    /// Vocabulary size.
    pub fn vocabulary_size(&self) -> usize {
        self.vocabulary.len()
    }

    /// Transform a document into a sparse tf–idf vector (index → weight),
    /// L2-normalised.  Out-of-vocabulary tokens are ignored.
    pub fn transform(&self, document: &str) -> HashMap<usize, f64> {
        let mut term_frequency: HashMap<usize, f64> = HashMap::new();
        for token in document.split_whitespace() {
            if let Some(&(index, _)) = self.vocabulary.get(token) {
                *term_frequency.entry(index).or_insert(0.0) += 1.0;
            }
        }
        // Apply idf.
        let idf_by_index: HashMap<usize, f64> = self
            .vocabulary
            .values()
            .map(|&(index, idf)| (index, idf))
            .collect();
        let mut vector: HashMap<usize, f64> = term_frequency
            .into_iter()
            .map(|(index, tf)| (index, tf * idf_by_index[&index]))
            .collect();
        // L2 normalise.
        let norm: f64 = vector.values().map(|w| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for w in vector.values_mut() {
                *w /= norm;
            }
        }
        vector
    }

    /// Cosine similarity of two documents under the fitted vocabulary.
    pub fn cosine_similarity(&self, a: &str, b: &str) -> f64 {
        let va = self.transform(a);
        let vb = self.transform(b);
        if va.is_empty() && vb.is_empty() {
            // Neither document has in-vocabulary content; treat identical empty
            // content as similar, otherwise dissimilar.
            return f64::from(u8::from(a == b));
        }
        let (small, large) = if va.len() <= vb.len() {
            (&va, &vb)
        } else {
            (&vb, &va)
        };
        let mut dot = 0.0;
        for (index, weight) in small {
            if let Some(other) = large.get(index) {
                dot += weight * other;
            }
        }
        dot.clamp(0.0, 1.0)
    }
}

/// A convenience wrapper bundling a fitted vectoriser for repeated pairwise
/// comparisons of long-text fields.
#[derive(Debug, Clone)]
pub struct CosineTfIdf {
    vectorizer: TfIdfVectorizer,
}

impl CosineTfIdf {
    /// Fit on a corpus of long-text field values.
    pub fn fit<S: AsRef<str>>(corpus: &[S]) -> Self {
        CosineTfIdf {
            vectorizer: TfIdfVectorizer::fit(corpus),
        }
    }

    /// Cosine similarity of two documents.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        self.vectorizer.cosine_similarity(a, b)
    }

    /// Access the underlying vectoriser.
    pub fn vectorizer(&self) -> &TfIdfVectorizer {
        &self.vectorizer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "digital camera with optical zoom and image stabilisation",
            "compact digital camera ten megapixel",
            "laser printer with duplex printing",
            "wireless laser printer for office use",
            "noise cancelling over ear headphones",
        ]
    }

    #[test]
    fn identical_documents_have_similarity_one() {
        let v = TfIdfVectorizer::fit(&corpus());
        let doc = "digital camera with optical zoom";
        assert!((v.cosine_similarity(doc, doc) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_documents_score_low() {
        let v = TfIdfVectorizer::fit(&corpus());
        let s = v.cosine_similarity("digital camera optical zoom", "noise cancelling headphones");
        assert!(s < 0.2, "similarity {s}");
    }

    #[test]
    fn related_documents_score_higher_than_unrelated() {
        let v = TfIdfVectorizer::fit(&corpus());
        let related = v.cosine_similarity(
            "compact digital camera ten megapixel",
            "digital camera with optical zoom",
        );
        let unrelated = v.cosine_similarity(
            "compact digital camera ten megapixel",
            "wireless laser printer for office",
        );
        assert!(related > unrelated);
    }

    #[test]
    fn idf_downweights_common_tokens() {
        // "with" appears in several documents, "stabilisation" in one; a match
        // on the rare token should matter more.
        let v = TfIdfVectorizer::fit(&corpus());
        let rare = v.cosine_similarity("image stabilisation", "optical image stabilisation");
        let common = v.cosine_similarity("with", "with duplex");
        assert!(rare > common);
    }

    #[test]
    fn out_of_vocabulary_documents() {
        let v = TfIdfVectorizer::fit(&corpus());
        assert_eq!(v.cosine_similarity("zzz qqq", "zzz qqq"), 1.0);
        assert_eq!(v.cosine_similarity("zzz qqq", "yyy www"), 0.0);
        assert_eq!(v.cosine_similarity("", ""), 1.0);
    }

    #[test]
    fn transform_is_l2_normalised() {
        let v = TfIdfVectorizer::fit(&corpus());
        let vec = v.transform("digital camera with optical zoom");
        let norm: f64 = vec.values().map(|w| w * w).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        assert!(v.vocabulary_size() > 10);
        assert_eq!(v.document_count(), 5);
    }

    #[test]
    fn wrapper_delegates() {
        let c = CosineTfIdf::fit(&corpus());
        let s = c.similarity("digital camera", "digital camera");
        assert!((s - 1.0).abs() < 1e-9);
        assert!(c.vectorizer().vocabulary_size() > 0);
    }

    #[test]
    fn similarity_symmetric_and_bounded() {
        let v = TfIdfVectorizer::fit(&corpus());
        let docs = [
            "digital camera optical",
            "laser printer duplex office",
            "",
            "unseen tokens here",
        ];
        for a in docs {
            for b in docs {
                let ab = v.cosine_similarity(a, b);
                let ba = v.cosine_similarity(b, a);
                assert!((ab - ba).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&ab));
            }
        }
    }
}
