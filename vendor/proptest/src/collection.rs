//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::Rng;

/// An inclusive size bound for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose length
/// lies in `size` (an exact `usize`, `a..b`, or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
