//! Bench: regenerate Figure 2 (error vs label budget, all pools and methods).

use criterion::{criterion_group, criterion_main, Criterion};
use er_core::datasets::DatasetProfile;
use experiments::figure2::{run, run_profile, Figure2Config};

fn bench_figure2(c: &mut Criterion) {
    // One representative pool at moderate scale for the printed output.
    let config = Figure2Config {
        scale: 0.05,
        repeats: 20,
        budget_fraction: 0.1,
        checkpoints: 6,
        seed: 2017,
        threads: 4,
        datasets: vec!["Abt-Buy".to_string(), "tweets100k".to_string()],
    };
    let figure = run(&config);
    println!("\n{}", figure.render());

    let mut group = c.benchmark_group("figure2");
    group.sample_size(10);
    let quick = Figure2Config {
        scale: 0.02,
        repeats: 5,
        budget_fraction: 0.1,
        checkpoints: 3,
        seed: 2017,
        threads: 2,
        datasets: Vec::new(),
    };
    group.bench_function("abt_buy_error_curves_scale_0.02", |b| {
        b.iter(|| run_profile(&DatasetProfile::abt_buy(), &quick))
    });
    group.finish();
}

criterion_group!(benches, bench_figure2);
criterion_main!(benches);
