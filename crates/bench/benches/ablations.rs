//! Ablation benches for the design choices called out in DESIGN.md §7:
//! ε-greedy exploration, prior strength / decay, number of strata, and the
//! stratification rule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::datasets::DatasetProfile;
use experiments::pools::direct_pool;
use oasis::oracle::GroundTruthOracle;
use oasis::samplers::{InteractiveSampler, OasisConfig, OasisSampler, Sampler, StratifierChoice};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean absolute error of OASIS on the Abt-Buy pool after a fixed budget.
fn oasis_error(config: OasisConfig, repeats: usize, budget: usize) -> f64 {
    let pool = direct_pool(&DatasetProfile::abt_buy(), 0.05, true, 2017);
    let mut total = 0.0;
    let mut counted = 0usize;
    for r in 0..repeats {
        let mut rng = StdRng::seed_from_u64(100 + r as u64);
        let mut oracle = GroundTruthOracle::new(pool.truth.clone());
        let mut sampler = OasisSampler::new(&pool.pool, config.clone()).expect("valid config");
        sampler
            .run_until_budget(&pool.pool, &mut oracle, &mut rng, budget, 500_000)
            .expect("sampling succeeds");
        let estimate = sampler.estimate().f_measure;
        if estimate.is_finite() {
            total += (estimate - pool.true_f_measure).abs();
            counted += 1;
        }
    }
    if counted > 0 {
        total / counted as f64
    } else {
        f64::NAN
    }
}

fn bench_ablations(c: &mut Criterion) {
    let repeats = 20;
    let budget = 200;

    println!(
        "\nAblation: mean |F̂ − F| on Abt-Buy (scale 0.05) after {budget} labels, {repeats} repeats"
    );
    for epsilon in [1e-3, 1e-1, 1.0] {
        let err = oasis_error(
            OasisConfig::default().with_epsilon(epsilon),
            repeats,
            budget,
        );
        println!("  epsilon = {epsilon:>5}: {err:.4}");
    }
    for strata in [10, 30, 60, 120] {
        let err = oasis_error(
            OasisConfig::default().with_strata_count(strata),
            repeats,
            budget,
        );
        println!("  K = {strata:>3}: {err:.4}");
    }
    for decay in [true, false] {
        let err = oasis_error(
            OasisConfig::default().with_prior_decay(decay),
            repeats,
            budget,
        );
        println!("  prior decay = {decay}: {err:.4}");
    }
    for (label, choice) in [
        ("CSF", StratifierChoice::Csf),
        ("equal-size", StratifierChoice::EqualSize),
    ] {
        let err = oasis_error(
            OasisConfig::default().with_stratifier(choice),
            repeats,
            budget,
        );
        println!("  stratifier = {label}: {err:.4}");
    }

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    for epsilon in [1e-3, 1e-1] {
        group.bench_with_input(
            BenchmarkId::new("epsilon", format!("{epsilon}")),
            &epsilon,
            |b, &eps| b.iter(|| oasis_error(OasisConfig::default().with_epsilon(eps), 3, 100)),
        );
    }
    for strata in [30usize, 120] {
        group.bench_with_input(BenchmarkId::new("strata", strata), &strata, |b, &k| {
            b.iter(|| oasis_error(OasisConfig::default().with_strata_count(k), 3, 100))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
