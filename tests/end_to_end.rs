//! Cross-crate integration tests: the full pipeline from synthetic data
//! generation through classification to OASIS evaluation.

use classifiers::{Classifier, LinearSvm, LogisticRegression, PlattScaler, TrainingSet};
use er_core::datasets::corruption::CorruptionConfig;
use er_core::datasets::generator::{GeneratorConfig, SyntheticDataset};
use er_core::datasets::vocabulary::EntityKind;
use er_core::datasets::{DatasetProfile, DirectPoolModel};
use er_core::pool_builder::PoolBuilder;
use oasis::measures::exhaustive_measures;
use oasis::oracle::{GroundTruthOracle, NoisyOracle, Oracle};
use oasis::samplers::{
    ImportanceSampler, InteractiveSampler, OasisConfig, OasisSampler, PassiveSampler, Sampler,
    StratifiedSampler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a full pipeline pool: records → features → trained L-SVM → scores.
fn pipeline_pool(seed: u64) -> (oasis::ScoredPool, Vec<bool>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dataset = SyntheticDataset::generate(
        GeneratorConfig {
            kind: EntityKind::Product,
            source_a_size: 150,
            source_b_size: 150,
            match_count: 30,
            corruption: CorruptionConfig::moderate(),
            deduplication: false,
            dedup_cluster_size: 0,
        },
        &mut rng,
    );
    let builder = PoolBuilder::fit(&dataset);
    let (features, labels) = builder.feature_matrix(&dataset);
    let training = TrainingSet::new(features, labels).balanced_subsample(30, &mut rng);
    let svm = LinearSvm::train(&training, &mut rng);
    let labelled = builder.build_pool(&dataset, |f| svm.score(f), 0.0);
    let target = exhaustive_measures(labelled.pool.predictions(), &labelled.truth, 0.5).f_measure;
    (labelled.pool, labelled.truth, target)
}

#[test]
fn full_pipeline_oasis_estimate_approaches_exhaustive_truth() {
    let (pool, truth, target) = pipeline_pool(1);
    assert!(
        target > 0.0,
        "the trained classifier must find some matches"
    );
    let mut rng = StdRng::seed_from_u64(2);
    let mut oracle = GroundTruthOracle::new(truth);
    let mut sampler = OasisSampler::new(
        &pool,
        OasisConfig::default()
            .with_strata_count(20)
            .with_score_threshold(0.0),
    )
    .unwrap();
    sampler
        .run_until_budget(&pool, &mut oracle, &mut rng, 2500, 2_000_000)
        .unwrap();
    let estimate = sampler.estimate();
    assert!(
        (estimate.f_measure - target).abs() < 0.12,
        "OASIS estimate {:.3} vs exhaustive {:.3}",
        estimate.f_measure,
        target
    );
    // Budget accounting is honest: distinct labels never exceed the pool size.
    assert!(oracle.labels_consumed() <= pool.len());
}

#[test]
fn all_four_methods_converge_on_the_same_pipeline_pool() {
    let (pool, truth, target) = pipeline_pool(3);
    let mut rng = StdRng::seed_from_u64(4);
    let budget = pool.len(); // enough to label everything if needed

    let estimates: Vec<(&str, f64)> = {
        let mut results = Vec::new();

        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut passive = PassiveSampler::new(0.5);
        passive
            .run_until_budget(&pool, &mut oracle, &mut rng, budget, 500_000)
            .unwrap();
        results.push(("passive", passive.estimate().to_measures().f_measure));

        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut stratified = StratifiedSampler::new(&pool, 0.5, 20).unwrap();
        stratified
            .run_until_budget(&pool, &mut oracle, &mut rng, budget, 500_000)
            .unwrap();
        results.push(("stratified", stratified.estimate().to_measures().f_measure));

        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut is = ImportanceSampler::new(&pool, 0.5, 0.0).unwrap();
        is.run_until_budget(&pool, &mut oracle, &mut rng, budget, 500_000)
            .unwrap();
        results.push(("is", is.estimate().to_measures().f_measure));

        let mut oracle = GroundTruthOracle::new(truth.clone());
        let mut oasis = OasisSampler::new(
            &pool,
            OasisConfig::default()
                .with_strata_count(20)
                .with_score_threshold(0.0),
        )
        .unwrap();
        oasis
            .run_until_budget(&pool, &mut oracle, &mut rng, budget, 500_000)
            .unwrap();
        results.push(("oasis", oasis.estimate().to_measures().f_measure));
        results
    };

    for (name, estimate) in estimates {
        assert!(
            (estimate - target).abs() < 0.2,
            "{name} estimate {estimate:.3} should approach the exhaustive value {target:.3}"
        );
    }
}

#[test]
fn calibrated_scores_from_platt_scaling_flow_through_oasis() {
    let (pool, truth, target) = pipeline_pool(5);
    // Calibrate the margin scores into probabilities and rebuild the pool.
    let mut rng = StdRng::seed_from_u64(6);
    let scores = pool.scores().to_vec();
    let scaler = PlattScaler::fit(&scores, &truth);
    let calibrated: Vec<f64> = scores.iter().map(|&s| scaler.calibrate(s)).collect();
    let calibrated_pool = oasis::ScoredPool::new(calibrated, pool.predictions().to_vec()).unwrap();
    assert!(calibrated_pool.scores_are_probabilities());

    let mut oracle = GroundTruthOracle::new(truth);
    let mut sampler = OasisSampler::new(
        &calibrated_pool,
        OasisConfig::default().with_strata_count(20),
    )
    .unwrap();
    sampler
        .run_until_budget(&calibrated_pool, &mut oracle, &mut rng, 2500, 2_000_000)
        .unwrap();
    assert!(
        (sampler.estimate().f_measure - target).abs() < 0.12,
        "estimate {:.3} vs target {:.3}",
        sampler.estimate().f_measure,
        target
    );
}

#[test]
fn direct_pool_profiles_work_with_every_sampler_and_noisy_oracles() {
    let profile = DatasetProfile::dblp_acm();
    let mut rng = StdRng::seed_from_u64(7);
    let (pool, truth) = DirectPoolModel::new(profile.direct_pool_config(0.1)).generate(&mut rng);
    let target = exhaustive_measures(pool.predictions(), &truth, 0.5).f_measure;

    // Deterministic oracle.
    let mut oracle = GroundTruthOracle::new(truth.clone());
    let mut sampler = OasisSampler::new(&pool, OasisConfig::default()).unwrap();
    sampler
        .run_until_budget(&pool, &mut oracle, &mut rng, 600, 1_000_000)
        .unwrap();
    assert!((sampler.estimate().to_measures().f_measure - target).abs() < 0.25);

    // Noisy oracle with a 2% flip rate still yields a sane, defined estimate.
    let mut noisy = NoisyOracle::from_ground_truth(&truth, 0.02).unwrap();
    let mut sampler = OasisSampler::new(&pool, OasisConfig::default()).unwrap();
    sampler
        .run_until_budget(&pool, &mut noisy, &mut rng, 600, 1_000_000)
        .unwrap();
    let estimate = sampler.estimate();
    assert!(estimate.is_defined());
    assert!((0.0..=1.0 + 1e-9).contains(&estimate.f_measure));
}

#[test]
fn logistic_regression_scores_are_usable_without_calibration() {
    // Probability-scored classifiers can feed OASIS directly (no logistic
    // squashing needed because the scores are already in [0, 1]).
    let mut rng = StdRng::seed_from_u64(8);
    let dataset = SyntheticDataset::generate(
        GeneratorConfig::small_linkage(EntityKind::Citation),
        &mut rng,
    );
    let builder = PoolBuilder::fit(&dataset);
    let (features, labels) = builder.feature_matrix(&dataset);
    let training = TrainingSet::new(features, labels).balanced_subsample(12, &mut rng);
    let lr = LogisticRegression::train(&training, &mut rng);
    let labelled = builder.build_pool(&dataset, |f| lr.score(f), 0.5);
    assert!(labelled.pool.scores_are_probabilities());

    let mut oracle = GroundTruthOracle::new(labelled.truth.clone());
    let mut sampler =
        OasisSampler::new(&labelled.pool, OasisConfig::default().with_strata_count(10)).unwrap();
    sampler
        .run_until_budget(&labelled.pool, &mut oracle, &mut rng, 800, 1_000_000)
        .unwrap();
    assert!(sampler.estimate().is_defined());
}
