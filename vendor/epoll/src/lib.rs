//! # epoll — offline subset of mio-style readiness polling
//!
//! The vendored-subset pattern of `vendor/rand` and `vendor/serde` applied
//! to the network layer: a small, safe wrapper over Linux `epoll` with
//! exactly the API the `oasis-engine` reactor needs, and nothing else.
//!
//! * [`Epoll`] — an epoll instance: `register`/`reregister`/`deregister`
//!   raw fds under a caller-chosen [`Token`], then [`Epoll::wait`] for
//!   readiness [`Event`]s with an optional timeout.
//! * [`Interest`] — readable/writable readiness, level-triggered by
//!   default, [`Interest::edge_triggered`] for `EPOLLET`.
//! * [`Slab`] — a registration slab mapping dense `usize` keys to
//!   connection state, recycling freed slots (tokens round-trip through
//!   epoll as `u64` payloads).
//! * [`nofile_limits`] / [`raise_nofile_limit`] — `RLIMIT_NOFILE`
//!   introspection, so servers and benches that hold tens of thousands of
//!   sockets can raise their soft fd limit to the hard cap first.
//!
//! All `unsafe` lives in the private `sys` module (direct declarations of
//! the libc symbols `std` already links — the offline build has no `libc`
//! crate).  On non-Linux targets the crate compiles but every `Epoll`
//! constructor returns [`std::io::ErrorKind::Unsupported`].

mod slab;
mod sys;

pub use slab::Slab;

use std::io;
use std::time::Duration;

/// An opaque per-registration identifier, reported back on every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Readiness interest for a registration.
///
/// Level-triggered by default — the poller keeps reporting readiness while
/// the condition holds, which makes pause/resume flow control (drop the
/// readable interest under backpressure, re-add it later) self-rearming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// No readiness — registration kept alive, nothing reported except
    /// errors/hangups (which epoll always delivers).
    pub const NONE: Interest = Interest(0);
    /// Readable readiness (`EPOLLIN` + `EPOLLRDHUP` so a peer's half-close
    /// is visible as a readable event leading to a zero-byte read).
    pub const READABLE: Interest = Interest(sys::EPOLLIN | sys::EPOLLRDHUP);
    /// Writable readiness (`EPOLLOUT`).
    pub const WRITABLE: Interest = Interest(sys::EPOLLOUT);

    /// Combine two interests.
    pub const fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// The same interest in edge-triggered mode (`EPOLLET`): readiness is
    /// reported once per transition, so the caller must drain to
    /// `WouldBlock` on every event.
    pub const fn edge_triggered(self) -> Interest {
        Interest(self.0 | sys::EPOLLET)
    }

    /// Whether the readable bit is set.
    pub const fn is_readable(self) -> bool {
        self.0 & sys::EPOLLIN != 0
    }

    /// Whether the writable bit is set.
    pub const fn is_writable(self) -> bool {
        self.0 & sys::EPOLLOUT != 0
    }

    fn bits(self) -> u32 {
        self.0
    }
}

/// One readiness event out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: usize,
    readiness: u32,
}

impl Event {
    /// The token the fd was registered under.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// Data can be read (includes peer half-close, which reads as EOF).
    pub fn is_readable(&self) -> bool {
        self.readiness & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }

    /// The fd can accept writes.
    pub fn is_writable(&self) -> bool {
        self.readiness & sys::EPOLLOUT != 0
    }

    /// An error condition is pending on the fd (read it to collect errno).
    pub fn is_error(&self) -> bool {
        self.readiness & sys::EPOLLERR != 0
    }

    /// The peer hung up entirely.
    pub fn is_hangup(&self) -> bool {
        self.readiness & sys::EPOLLHUP != 0
    }
}

/// A reusable buffer of readiness events for [`Epoll::wait`].
#[derive(Debug)]
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    ready: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Self {
        Events {
            raw: vec![sys::EpollEvent::zeroed(); capacity.max(1)],
            ready: 0,
        }
    }

    /// Iterate over the events produced by the last wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.ready].iter().map(|raw| {
            // Copy fields out of the (possibly packed) raw struct; never
            // hold references into it.
            let raw = *raw;
            Event {
                token: raw.data as usize,
                readiness: raw.events,
            }
        })
    }

    /// Number of events produced by the last wait.
    pub fn len(&self) -> usize {
        self.ready
    }

    /// Whether the last wait produced no events.
    pub fn is_empty(&self) -> bool {
        self.ready == 0
    }
}

/// An epoll instance.  Registrations refer to raw fds the *caller* owns:
/// dropping the `Epoll` closes only the epoll fd itself.
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// A fresh epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    /// Fd exhaustion, or [`io::ErrorKind::Unsupported`] off Linux.
    pub fn new() -> io::Result<Epoll> {
        Ok(Epoll { fd: sys::create()? })
    }

    /// Start watching `fd` for `interest`, reporting events under `token`.
    ///
    /// # Errors
    /// `EEXIST` when the fd is already registered (use
    /// [`Epoll::reregister`]), or any `epoll_ctl` failure.
    pub fn register(&self, fd: i32, token: Token, interest: Interest) -> io::Result<()> {
        sys::add(self.fd, fd, interest.bits(), token.0 as u64)
    }

    /// Replace an existing registration's interest and token.
    ///
    /// # Errors
    /// `ENOENT` when the fd was never registered, or any `epoll_ctl`
    /// failure.
    pub fn reregister(&self, fd: i32, token: Token, interest: Interest) -> io::Result<()> {
        sys::modify(self.fd, fd, interest.bits(), token.0 as u64)
    }

    /// Stop watching `fd`.  (Closing an fd deregisters it implicitly; this
    /// is for keeping an fd open while ignoring it.)
    ///
    /// # Errors
    /// `ENOENT` when the fd was never registered.
    pub fn deregister(&self, fd: i32) -> io::Result<()> {
        sys::delete(self.fd, fd)
    }

    /// Wait for readiness, filling `events`.  `None` blocks indefinitely;
    /// `Some(d)` waits at most `d` (rounded up to a millisecond so short
    /// positive timeouts never busy-spin).  Returns the number of events.
    ///
    /// # Errors
    /// Any `epoll_wait` failure except `EINTR`, which retries internally.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis().min(i32::MAX as u128) as i32;
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms
                }
            }
        };
        events.ready = 0;
        loop {
            match sys::wait(self.fd, &mut events.raw, timeout_ms) {
                Ok(n) => {
                    events.ready = n;
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

/// The process's `(soft, hard)` open-file limits.
///
/// # Errors
/// `getrlimit` failure, or [`io::ErrorKind::Unsupported`] off Linux.
pub fn nofile_limits() -> io::Result<(u64, u64)> {
    sys::nofile_limits()
}

/// Raise the soft open-file limit to the hard limit, returning the new soft
/// limit.  A server expecting tens of thousands of sockets calls this once
/// at startup.
///
/// # Errors
/// `setrlimit` failure, or [`io::ErrorKind::Unsupported`] off Linux.
pub fn raise_nofile_limit() -> io::Result<u64> {
    sys::raise_nofile_to_hard()
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_fires_with_the_registered_token() {
        let (mut a, b) = pair();
        let epoll = Epoll::new().unwrap();
        epoll
            .register(b.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing to read yet: a zero-timeout wait reports no events.
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);

        a.write_all(b"x").unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let event = events.iter().next().unwrap();
        assert_eq!(event.token(), Token(7));
        assert!(event.is_readable());
        assert!(!event.is_writable());
    }

    #[test]
    fn level_triggered_rearms_until_drained_edge_fires_once() {
        let (mut a, mut b) = pair();
        let epoll = Epoll::new().unwrap();
        epoll
            .register(b.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();
        a.write_all(b"xy").unwrap();
        let mut events = Events::with_capacity(8);

        // Level-triggered: the unread byte keeps the event firing.
        for _ in 0..2 {
            let n = epoll
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(
                n, 1,
                "level-triggered readiness re-fires while data is unread"
            );
        }

        // Edge-triggered: one notification per transition.
        epoll
            .reregister(b.as_raw_fd(), Token(2), Interest::READABLE.edge_triggered())
            .unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1, "the MOD itself rearms one edge notification");
        assert_eq!(events.iter().next().unwrap().token(), Token(2));
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "no new data, no new edge");

        let mut buf = [0u8; 8];
        let _ = b.read(&mut buf);
        a.write_all(b"z").unwrap();
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1, "a fresh write is a fresh edge");
    }

    #[test]
    fn interest_modulation_pauses_and_resumes_readiness() {
        let (mut a, b) = pair();
        let epoll = Epoll::new().unwrap();
        epoll
            .register(b.as_raw_fd(), Token(3), Interest::READABLE)
            .unwrap();
        a.write_all(b"backpressure").unwrap();
        let mut events = Events::with_capacity(8);
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap(),
            1
        );

        // Pause: interest NONE silences the pending data…
        epoll
            .reregister(b.as_raw_fd(), Token(3), Interest::NONE)
            .unwrap();
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );

        // …and resuming the readable interest re-reports it (level
        // triggering makes pause/resume flow control self-rearming).
        epoll
            .reregister(b.as_raw_fd(), Token(3), Interest::READABLE)
            .unwrap();
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap(),
            1
        );
    }

    #[test]
    fn writable_and_combined_interest() {
        let (a, _b) = pair();
        let epoll = Epoll::new().unwrap();
        epoll
            .register(
                a.as_raw_fd(),
                Token(9),
                Interest::READABLE.with(Interest::WRITABLE),
            )
            .unwrap();
        let mut events = Events::with_capacity(8);
        let n = epoll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let event = events.iter().next().unwrap();
        assert!(event.is_writable(), "an idle socket's send buffer is open");
        assert!(!event.is_readable());
    }

    #[test]
    fn hangup_is_reported_as_readable_eof() {
        let (a, b) = pair();
        let epoll = Epoll::new().unwrap();
        epoll
            .register(b.as_raw_fd(), Token(4), Interest::READABLE)
            .unwrap();
        drop(a);
        let mut events = Events::with_capacity(8);
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap(),
            1
        );
        let event = events.iter().next().unwrap();
        assert!(
            event.is_readable(),
            "hangup surfaces as readable so the owner reads EOF: {event:?}"
        );
    }

    #[test]
    fn deregistered_fds_stay_silent() {
        let (mut a, b) = pair();
        let epoll = Epoll::new().unwrap();
        epoll
            .register(b.as_raw_fd(), Token(5), Interest::READABLE)
            .unwrap();
        epoll.deregister(b.as_raw_fd()).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Events::with_capacity(8);
        assert_eq!(
            epoll
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn nofile_limits_are_sane_and_raisable() {
        let (soft, hard) = nofile_limits().unwrap();
        assert!(soft > 0 && soft <= hard);
        let raised = raise_nofile_limit().unwrap();
        assert_eq!(raised, hard);
        let (soft_after, _) = nofile_limits().unwrap();
        assert_eq!(soft_after, hard);
    }
}
