//! The multi-session engine: shared pools, named sessions, and a scoped
//! worker pool that drives many sessions concurrently.
//!
//! Sessions are fully independent (own sampler, own RNG, own oracle), so
//! driving them from `W` worker threads produces estimates bit-identical to
//! driving them one after another — concurrency changes wall-clock time, not
//! results.  That property is what the `engine_parity` tests and experiment
//! driver assert.

use crate::checkpoint::SessionCheckpoint;
use crate::error::{EngineError, EngineResult};
use crate::metrics::{Clock, Counter, MetricsRegistry, MonotonicClock};
use crate::session::{LabelSource, Session, SessionLimits};
use crate::store::{parse_envelope, render_envelope, CheckpointStore};
use crate::wal::{self, WalEntry, WalRecord};
use oasis::{Estimate, OasisConfig, SamplerMethod, ScoredPool};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bounded, deterministic retry for transient store faults: up to
/// `max_retries` extra attempts with doubling backoff from `base_delay`.
/// No jitter — retry behaviour must be as reproducible as everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure.
    pub max_retries: u32,
    /// Delay before the first retry; doubles each attempt.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(1),
        }
    }
}

/// What a WAL replay did: how many records were applied, and whether a
/// partial trailing record (crash mid-append) was truncated along the way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Records replayed on top of the checkpoint.
    pub replayed: usize,
    /// Whether a torn trailing WAL record was dropped and scrubbed.
    pub truncated_tail: bool,
}

/// A unit of work for [`Engine::run_parallel`]: drive one session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionJob {
    /// Run a fixed number of steps.
    Steps {
        /// Session id.
        session: String,
        /// Number of propose→query→apply iterations.
        steps: usize,
    },
    /// Run until the label budget is consumed (or `max_steps` elapse).
    Budget {
        /// Session id.
        session: String,
        /// Distinct-label budget.
        budget: usize,
        /// Iteration cap.
        max_steps: usize,
    },
}

impl SessionJob {
    fn session_id(&self) -> &str {
        match self {
            SessionJob::Steps { session, .. } | SessionJob::Budget { session, .. } => session,
        }
    }
}

/// Per-session durability bookkeeping (next WAL sequence number, dirtiness,
/// LRU recency).  Lives beside — not inside — the session so it survives
/// eviction and is reachable without the session's own mutex.
#[derive(Debug, Clone, Default)]
struct SessionMeta {
    /// Sequence number the next WAL record will carry.
    wal_seq: u64,
    /// Whether the session has been mutated since its last durable
    /// checkpoint (or, without a store, since it was created/restored).
    dirty: bool,
    /// Logical access time for LRU eviction.
    last_access: u64,
}

/// A snapshot of one session's identity and progress, cheap enough to build
/// for a `sessions` listing without disturbing the run.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOverview {
    /// The session id.
    pub id: String,
    /// The sampling method, or `None` for a stored-but-evicted session
    /// (reading it would mean rehydrating the whole checkpoint).
    pub method: Option<SamplerMethod>,
    /// Number of pool shards the session's sampler runs over (1 for flat
    /// samplers), if resident.
    pub shards: Option<usize>,
    /// Pending (proposed but unlabelled) ticket count, if resident.
    pub pending: Option<usize>,
    /// Distinct labels consumed, if resident.
    pub labels_consumed: Option<usize>,
    /// Whether the session has been mutated since its last durable
    /// checkpoint.
    pub dirty: bool,
    /// Whether the session is resident in memory (vs. only in the store).
    pub resident: bool,
}

/// The engine: a registry of shared pools and concurrent sessions.
///
/// All methods take `&self`; interior locking makes the engine shareable
/// across server connections and worker threads.
///
/// With a [`CheckpointStore`] attached (see [`Engine::with_store`]) every
/// session is durable: creation writes a base checkpoint, every mutating
/// request is write-ahead logged, [`Engine::checkpoint_to`] compacts log
/// into checkpoint, and a restart — or an access to a session evicted under
/// [`Engine::with_max_resident`] — rebuilds the exact pre-crash state by
/// replaying `latest checkpoint + WAL suffix`.
#[derive(Debug)]
pub struct Engine {
    pools: RwLock<HashMap<String, Arc<ScoredPool>>>,
    sessions: RwLock<HashMap<String, Arc<Mutex<Session>>>>,
    store: Option<Arc<dyn CheckpointStore>>,
    meta: Mutex<HashMap<String, SessionMeta>>,
    max_resident: Option<usize>,
    clock: AtomicU64,
    metrics: Arc<MetricsRegistry>,
    lease_clock: Arc<dyn Clock>,
    retry: RetryPolicy,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            pools: RwLock::default(),
            sessions: RwLock::default(),
            store: None,
            meta: Mutex::default(),
            max_resident: None,
            clock: AtomicU64::new(0),
            metrics: Arc::new(MetricsRegistry::new()),
            lease_clock: Arc::new(MonotonicClock::new()),
            retry: RetryPolicy::default(),
        }
    }
}

impl Engine {
    /// An empty engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Attach a durable checkpoint store.  From then on every session is
    /// durable: created sessions write a base checkpoint immediately, and
    /// mutating requests are write-ahead logged before they apply.
    pub fn with_store(mut self, store: Arc<dyn CheckpointStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Cap the number of sessions resident in memory.  Requires a store:
    /// when the cap is exceeded, the least-recently-used session is
    /// checkpointed and evicted, and a later access rehydrates it
    /// transparently.  Without a store the cap is ignored.
    pub fn with_max_resident(mut self, cap: usize) -> Self {
        self.max_resident = Some(cap.max(1));
        self
    }

    /// Replace the metrics registry — pass [`MetricsRegistry::disabled`] for
    /// an uninstrumented engine (the overhead-bench baseline) or a registry
    /// on a [`ManualClock`](crate::metrics::ManualClock) for deterministic
    /// latency tests.  The default engine is instrumented on the monotonic
    /// clock.
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Arc::new(metrics);
        self
    }

    /// Replace the clock lease deadlines are read from.  The default is the
    /// process monotonic clock; tests pass a
    /// [`ManualClock`](crate::metrics::ManualClock) to expire leases at will.
    pub fn with_lease_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.lease_clock = clock;
        self
    }

    /// Replace the transient-fault retry policy (see [`RetryPolicy`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The engine's metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// A shareable handle to the metrics registry — hand this to a
    /// [`FaultyStore`](crate::fault::FaultyStore) or a guard layer so their
    /// counters land in the same snapshot.
    pub fn metrics_handle(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// The current lease-clock reading in microseconds.  The protocol layer
    /// reads it once per propose on lease-enabled sessions and WAL-logs the
    /// value, so replay expires exactly what the live run expired.
    pub fn lease_now(&self) -> u64 {
        self.lease_clock.now_micros()
    }

    /// Run `op`, retrying [`EngineError::StoreTransient`] failures under the
    /// engine's [`RetryPolicy`] with deterministic doubling backoff.  An
    /// exhausted budget promotes the fault to a permanent
    /// [`EngineError::Store`]; any other error passes through untouched.
    fn with_store_retry<T>(
        &self,
        what: &str,
        mut op: impl FnMut() -> EngineResult<T>,
    ) -> EngineResult<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Err(EngineError::StoreTransient(why)) if attempt < self.retry.max_retries => {
                    self.metrics.incr(Counter::RetriedWrite);
                    std::thread::sleep(self.retry.base_delay * (1u32 << attempt.min(16)));
                    attempt += 1;
                    let _ = why;
                }
                Err(EngineError::StoreTransient(why)) => {
                    return Err(EngineError::Store(format!(
                        "{what} failed after {attempt} retries: {why}"
                    )));
                }
                other => return other,
            }
        }
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&Arc<dyn CheckpointStore>> {
        self.store.as_ref()
    }

    /// Register a pool under `id`, sharing it across future sessions.
    ///
    /// # Errors
    /// [`EngineError::DuplicateId`] if the id is taken.
    pub fn load_pool(&self, id: impl Into<String>, pool: ScoredPool) -> EngineResult<()> {
        let id = id.into();
        let mut pools = self.pools.write();
        if pools.contains_key(&id) {
            return Err(EngineError::DuplicateId(id));
        }
        pools.insert(id, Arc::new(pool));
        Ok(())
    }

    /// Look up a shared pool.
    ///
    /// # Errors
    /// [`EngineError::UnknownPool`] if it was never loaded.
    pub fn pool(&self, id: &str) -> EngineResult<Arc<ScoredPool>> {
        self.pools
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| EngineError::UnknownPool(id.to_string()))
    }

    /// Ids of all loaded pools, sorted.
    pub fn pool_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.pools.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Create a session over a loaded pool, running the given sampling
    /// method (see [`oasis::AnySampler::build`] for how the shared config
    /// maps onto each method).
    ///
    /// # Errors
    /// Unknown pool, duplicate session id, or sampler construction failure.
    pub fn create_session(
        &self,
        session_id: impl Into<String>,
        pool_id: &str,
        method: SamplerMethod,
        config: OasisConfig,
        seed: u64,
        source: LabelSource,
    ) -> EngineResult<()> {
        self.create_session_sharded(session_id, pool_id, method, config, None, seed, source)
    }

    /// Create a session like [`Engine::create_session`], optionally sharding
    /// the pool into `shards` partitions with per-shard strata and samplers
    /// (see [`Session::new_sharded`]).  The session still speaks every
    /// protocol verb unchanged; only proposal routing differs.
    ///
    /// # Errors
    /// As [`Engine::create_session`], plus rejection of `Some(0)` or more
    /// shards than pool items.
    #[allow(clippy::too_many_arguments)]
    pub fn create_session_sharded(
        &self,
        session_id: impl Into<String>,
        pool_id: &str,
        method: SamplerMethod,
        config: OasisConfig,
        shards: Option<usize>,
        seed: u64,
        source: LabelSource,
    ) -> EngineResult<()> {
        self.create_session_with_limits(
            session_id,
            pool_id,
            method,
            config,
            shards,
            seed,
            source,
            SessionLimits::default(),
        )
    }

    /// Create a session like [`Engine::create_session_sharded`], additionally
    /// applying robustness [`SessionLimits`]: a propose-lease timeout and/or
    /// a pending-ticket cap.
    ///
    /// # Errors
    /// As [`Engine::create_session_sharded`].
    #[allow(clippy::too_many_arguments)]
    pub fn create_session_with_limits(
        &self,
        session_id: impl Into<String>,
        pool_id: &str,
        method: SamplerMethod,
        config: OasisConfig,
        shards: Option<usize>,
        seed: u64,
        source: LabelSource,
        limits: SessionLimits,
    ) -> EngineResult<()> {
        let session_id = session_id.into();
        let pool = self.pool(pool_id)?;
        // Fail fast on an obvious duplicate, but do the expensive sampler
        // construction (stratification is O(N log N)) outside any lock so
        // concurrent traffic on other sessions is not stalled.
        if self.sessions.read().contains_key(&session_id) {
            return Err(EngineError::DuplicateId(session_id));
        }
        self.reject_stored_duplicate(&session_id)?;
        let session = Session::new_with_limits(
            session_id.clone(),
            pool_id,
            pool,
            method,
            config,
            shards,
            seed,
            source,
            limits,
        )?;
        if shards.is_some() {
            self.metrics.incr(Counter::ShardedSession);
        }
        self.register(session_id, session)
    }

    /// A stored-but-evicted session owns its id just as a resident one does.
    fn reject_stored_duplicate(&self, session_id: &str) -> EngineResult<()> {
        if let Some(store) = &self.store {
            if store.load_checkpoint(session_id)?.is_some() {
                return Err(EngineError::DuplicateId(session_id.to_string()));
            }
        }
        Ok(())
    }

    /// Register a freshly built session; with a store attached, write its
    /// base checkpoint first so the WAL always has something to replay onto.
    fn register(&self, session_id: String, session: Session) -> EngineResult<()> {
        if let Some(store) = &self.store {
            let timer = self.metrics.timer();
            let document = render_envelope(&session.checkpoint(), 0);
            self.with_store_retry("base checkpoint write", || {
                store.put_checkpoint(&session_id, &document)
            })?;
            self.with_store_retry("base WAL truncate", || store.truncate_wal(&session_id))?;
            self.metrics.incr(Counter::CheckpointWrite);
            self.metrics.record("checkpoint.write", timer);
        }
        let handle = Arc::new(Mutex::new(session));
        {
            let mut sessions = self.sessions.write();
            if sessions.contains_key(&session_id) {
                return Err(EngineError::DuplicateId(session_id));
            }
            sessions.insert(session_id.clone(), handle);
            let mut meta = self.meta.lock();
            let slot = meta.entry(session_id).or_default();
            slot.wal_seq = 0;
            slot.dirty = false;
            slot.last_access = self.clock.fetch_add(1, Ordering::Relaxed);
        }
        self.enforce_resident_cap()
    }

    /// Restore a session from a checkpoint; the checkpointed pool id must be
    /// loaded and match the fingerprint.  The session is registered under
    /// `session_id`, which may differ from the checkpointed id (restore-as).
    ///
    /// # Errors
    /// Unknown pool, duplicate session id, or checkpoint mismatch.
    pub fn restore_session(
        &self,
        session_id: impl Into<String>,
        checkpoint: SessionCheckpoint,
    ) -> EngineResult<()> {
        let session_id = session_id.into();
        let pool = self.pool(&checkpoint.pool_id)?;
        if self.sessions.read().contains_key(&session_id) {
            return Err(EngineError::DuplicateId(session_id));
        }
        self.reject_stored_duplicate(&session_id)?;
        // Fingerprint verification and sampler reconstruction are O(N);
        // keep them outside the write lock (same pattern as create_session).
        let mut checkpoint = checkpoint;
        checkpoint.session_id = session_id.clone();
        let timer = self.metrics.timer();
        let session = Session::restore(checkpoint, pool)?;
        self.metrics.incr(Counter::CheckpointRestore);
        if session.shard_count() > 1 {
            self.metrics.incr(Counter::ShardedSession);
        }
        self.metrics.record("checkpoint.restore", timer);
        self.register(session_id, session)
    }

    /// Fetch a session handle.  With a store attached, a stored-but-evicted
    /// session is rehydrated transparently (checkpoint + WAL replay).
    ///
    /// # Errors
    /// [`EngineError::UnknownSession`] if it exists neither in memory nor in
    /// the store; [`EngineError::Store`] if its store entry is corrupt.
    pub fn session(&self, id: &str) -> EngineResult<Arc<Mutex<Session>>> {
        if let Some(handle) = self.sessions.read().get(id).cloned() {
            self.touch(id);
            return Ok(handle);
        }
        self.rehydrate(id).map(|(handle, _)| handle)
    }

    /// Drop a torn trailing record from a session's on-disk WAL: keep the
    /// parseable prefix, truncate, and re-append it.  Best-effort — a store
    /// that cannot even be scrubbed will surface its own error on the next
    /// append, and replay tolerates the torn tail regardless.
    fn scrub_wal_tail(&self, store: &Arc<dyn CheckpointStore>, session_id: &str) {
        let Ok(lines) = store.read_wal(session_id) else {
            return;
        };
        let good: Vec<&String> = lines
            .iter()
            .take_while(|line| WalRecord::parse(line).is_ok())
            .collect();
        if good.len() == lines.len() {
            return;
        }
        if store.truncate_wal(session_id).is_err() {
            return;
        }
        for line in good {
            if store.append_wal(session_id, line).is_err() {
                return;
            }
        }
    }

    fn touch(&self, id: &str) {
        if let Some(slot) = self.meta.lock().get_mut(id) {
            slot.last_access = self.clock.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Rebuild an evicted (or pre-restart) session from the store: restore
    /// the latest checkpoint, then replay the WAL suffix at or beyond its
    /// watermark.  A partial trailing WAL record — the signature of a crash
    /// mid-append — is dropped, scrubbed from disk, and reported; interior
    /// corruption stays a hard error.  Returns the handle and a
    /// [`ReplayReport`].
    fn rehydrate(&self, id: &str) -> EngineResult<(Arc<Mutex<Session>>, ReplayReport)> {
        let unknown = || EngineError::UnknownSession(id.to_string());
        let Some(store) = self.store.clone() else {
            return Err(unknown());
        };
        let timer = self.metrics.timer();
        let Some(document) =
            self.with_store_retry("checkpoint load", || store.load_checkpoint(id))?
        else {
            return Err(unknown());
        };
        let (mut checkpoint, wal_seq) = parse_envelope(&document)?;
        checkpoint.session_id = id.to_string();
        let pool = self.pool(&checkpoint.pool_id)?;
        let mut session = Session::restore(checkpoint, pool)?;
        let lines = self.with_store_retry("WAL read", || store.read_wal(id))?;
        let outcome = wal::parse_lines(&lines)?;
        if outcome.truncated_tail.is_some() {
            self.scrub_wal_tail(&store, id);
        }
        let applied = wal::replay(&mut session, &outcome.records, wal_seq)?;
        self.metrics.incr(Counter::Rehydration);
        self.metrics.incr(Counter::CheckpointRestore);
        if session.shard_count() > 1 {
            self.metrics.incr(Counter::ShardedSession);
        }
        self.metrics.add(Counter::WalReplay, applied as u64);
        self.metrics.record("rehydrate", timer);
        let report = ReplayReport {
            replayed: applied,
            truncated_tail: outcome.truncated_tail.is_some(),
        };

        let handle = Arc::new(Mutex::new(session));
        {
            let mut sessions = self.sessions.write();
            if let Some(existing) = sessions.get(id) {
                // Lost a rehydration race; the winner's copy (and its meta,
                // possibly already advanced by new WAL appends) is the truth.
                return Ok((
                    Arc::clone(existing),
                    ReplayReport {
                        replayed: 0,
                        truncated_tail: false,
                    },
                ));
            }
            sessions.insert(id.to_string(), Arc::clone(&handle));
            let mut meta = self.meta.lock();
            let slot = meta.entry(id.to_string()).or_default();
            slot.wal_seq = wal_seq + applied as u64;
            slot.dirty = applied > 0;
            slot.last_access = self.clock.fetch_add(1, Ordering::Relaxed);
        }
        self.enforce_resident_cap()?;
        Ok((handle, report))
    }

    /// Explicitly rehydrate a session from the store (the `restore_from`
    /// protocol verb), returning a [`ReplayReport`]: how many WAL records
    /// were replayed on top of the checkpoint and whether a torn trailing
    /// record had to be truncated.
    ///
    /// # Errors
    /// [`EngineError::Store`] with no store attached or a corrupt entry;
    /// [`EngineError::UnknownSession`] if the store has no such session;
    /// [`EngineError::DuplicateId`] if it is already resident.
    pub fn restore_from(&self, id: &str) -> EngineResult<ReplayReport> {
        if self.store.is_none() {
            return Err(EngineError::Store(
                "no checkpoint store attached".to_string(),
            ));
        }
        if self.sessions.read().contains_key(id) {
            return Err(EngineError::DuplicateId(id.to_string()));
        }
        self.rehydrate(id).map(|(_, report)| report)
    }

    /// Durably checkpoint a session: write the store envelope (checkpoint +
    /// WAL watermark) and truncate its log.  Returns the watermark — the
    /// sequence number the next WAL record will carry.
    ///
    /// # Errors
    /// [`EngineError::Store`] with no store attached or on write failure;
    /// [`EngineError::UnknownSession`] if the session does not exist.
    pub fn checkpoint_to(&self, id: &str) -> EngineResult<u64> {
        let Some(store) = self.store.clone() else {
            return Err(EngineError::Store(
                "no checkpoint store attached".to_string(),
            ));
        };
        let handle = self.session(id)?;
        // Hold the session lock across capture + write + truncate so no
        // mutation (and no WAL append) can slip between them.
        let session = handle.lock();
        let mut meta = self.meta.lock();
        let slot = meta.entry(id.to_string()).or_default();
        let wal_seq = slot.wal_seq;
        let timer = self.metrics.timer();
        let document = render_envelope(&session.checkpoint(), wal_seq);
        self.with_store_retry("checkpoint write", || store.put_checkpoint(id, &document))?;
        self.with_store_retry("WAL truncate", || store.truncate_wal(id))?;
        self.metrics.incr(Counter::CheckpointWrite);
        self.metrics.record("checkpoint.write", timer);
        slot.dirty = false;
        Ok(wal_seq)
    }

    /// Append a mutation record to a session's write-ahead log, assigning
    /// the next sequence number.  MUST be called with the session's mutex
    /// held and *before* the mutation is applied — that ordering is what
    /// makes the log a write-*ahead* log and keeps concurrent batches in
    /// application order.  No-op (except dirtiness tracking) without a
    /// store.
    pub(crate) fn log_wal(&self, session_id: &str, entry: WalEntry) -> EngineResult<()> {
        let mut meta = self.meta.lock();
        let slot = meta.entry(session_id.to_string()).or_default();
        if let Some(store) = &self.store {
            let record = WalRecord {
                seq: slot.wal_seq,
                entry,
            };
            let line = record.render();
            let timer = self.metrics.timer();
            if let Err(err) =
                self.with_store_retry("WAL append", || store.append_wal(session_id, &line))
            {
                // A failed append may still have put a torn prefix on disk
                // (crash mid-write).  Scrub it now so later successful
                // appends cannot bury it as interior corruption, which
                // replay treats as fatal.
                self.scrub_wal_tail(store, session_id);
                return Err(err);
            }
            self.metrics.incr(Counter::WalAppend);
            self.metrics.record("wal.append", timer);
            slot.wal_seq += 1;
        }
        slot.dirty = true;
        Ok(())
    }

    /// Evict least-recently-used sessions (checkpointing them first) until
    /// the resident count is within the configured cap.
    fn enforce_resident_cap(&self) -> EngineResult<()> {
        let Some(cap) = self.max_resident else {
            return Ok(());
        };
        if self.store.is_none() {
            return Ok(());
        }
        loop {
            let victim = {
                let sessions = self.sessions.read();
                if sessions.len() <= cap {
                    return Ok(());
                }
                let meta = self.meta.lock();
                sessions
                    .keys()
                    .min_by_key(|id| meta.get(*id).map(|m| m.last_access).unwrap_or(0))
                    .cloned()
            };
            let Some(victim) = victim else {
                return Ok(());
            };
            self.checkpoint_to(&victim)?;
            self.sessions.write().remove(&victim);
            self.metrics.incr(Counter::Eviction);
            // Meta stays: its wal_seq matches the envelope watermark, so
            // appends after rehydration continue the same sequence.
        }
    }

    /// Ids of all known sessions — resident and stored — sorted.
    pub fn session_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.sessions.read().keys().cloned().collect();
        if let Some(store) = &self.store {
            if let Ok(stored) = store.list_sessions() {
                ids.extend(stored);
            }
        }
        ids.sort();
        ids.dedup();
        ids
    }

    /// Per-session metadata for every known session, sorted by id.  Resident
    /// sessions report method/pending/labels; stored-but-evicted ones only
    /// their identity (reading more would mean rehydrating the checkpoint).
    pub fn session_overviews(&self) -> Vec<SessionOverview> {
        self.session_ids()
            .into_iter()
            .map(|id| {
                let resident = self.sessions.read().get(&id).cloned();
                let dirty = self.meta.lock().get(&id).map(|m| m.dirty).unwrap_or(false);
                match resident {
                    Some(handle) => {
                        let session = handle.lock();
                        SessionOverview {
                            id,
                            method: Some(session.method()),
                            shards: Some(session.shard_count()),
                            pending: Some(session.pending_count()),
                            labels_consumed: Some(session.labels_consumed()),
                            dirty,
                            resident: true,
                        }
                    }
                    None => SessionOverview {
                        id,
                        method: None,
                        shards: None,
                        pending: None,
                        labels_consumed: None,
                        dirty,
                        resident: false,
                    },
                }
            })
            .collect()
    }

    /// Remove a session everywhere: the resident registry, its durability
    /// metadata, and (with a store) its checkpoint and log.
    ///
    /// # Errors
    /// [`EngineError::UnknownSession`] if it exists neither in memory nor in
    /// the store.
    pub fn delete_session(&self, id: &str) -> EngineResult<()> {
        let resident = self.sessions.write().remove(id).is_some();
        let mut stored = false;
        if let Some(store) = &self.store {
            stored = store.load_checkpoint(id)?.is_some();
            store.remove(id)?;
        }
        self.meta.lock().remove(id);
        if resident || stored {
            Ok(())
        } else {
            Err(EngineError::UnknownSession(id.to_string()))
        }
    }

    /// Drive many sessions concurrently on a pool of `workers` scoped
    /// threads, returning one estimate per job in job order.
    ///
    /// Work is distributed by an atomic cursor over the job list; since each
    /// session owns its RNG and oracle, the estimates are bit-identical to
    /// running the jobs sequentially, whatever the interleaving — provided
    /// each session appears in at most one job.  Jobs naming the same session
    /// are safe (the per-session mutex serialises them) but race for lock
    /// order, so their split of the session's RNG stream is not
    /// deterministic.
    ///
    /// # Errors
    /// The first failing job's error (all jobs still run to completion).
    pub fn run_parallel(&self, jobs: &[SessionJob], workers: usize) -> EngineResult<Vec<Estimate>> {
        let workers = workers.max(1).min(jobs.len().max(1));
        let cursor = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<EngineResult<Estimate>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= jobs.len() {
                        break;
                    }
                    let job = &jobs[index];
                    let outcome = self.run_job(job);
                    *results[index].lock() = Some(outcome);
                });
            }
        })
        .expect("engine worker panicked");

        let mut estimates = Vec::with_capacity(jobs.len());
        for slot in results {
            estimates.push(slot.into_inner().expect("every job ran")?);
        }
        Ok(estimates)
    }

    fn run_job(&self, job: &SessionJob) -> EngineResult<Estimate> {
        let session = self.session(job.session_id())?;
        let mut session = session.lock();
        let before = session.estimate().iterations;
        let outcome = match job {
            SessionJob::Steps { steps, .. } => {
                self.log_wal(job.session_id(), WalEntry::Step { steps: *steps })?;
                session.step(*steps)
            }
            SessionJob::Budget {
                budget, max_steps, ..
            } => {
                self.log_wal(
                    job.session_id(),
                    WalEntry::RunBudget {
                        label_budget: *budget,
                        max_steps: *max_steps,
                    },
                )?;
                session.run_until_budget(*budget, *max_steps)
            }
        };
        if session.shard_count() > 1 {
            if let Ok(estimate) = &outcome {
                self.metrics
                    .add(Counter::ShardRoute, (estimate.iterations - before) as u64);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis::{GroundTruthOracle, OasisSampler, Sampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool_and_truth(n: usize, seed: u64) -> (ScoredPool, Vec<bool>) {
        let (pool, truth) = crate::test_support::pool_and_truth(n, seed, 0.05);
        ((*pool).clone(), truth)
    }

    #[test]
    fn pool_and_session_registry_basics() {
        let engine = Engine::new();
        let (pool, truth) = pool_and_truth(300, 1);
        engine.load_pool("p", pool.clone()).unwrap();
        assert!(matches!(
            engine.load_pool("p", pool),
            Err(EngineError::DuplicateId(_))
        ));
        assert!(matches!(engine.pool("q"), Err(EngineError::UnknownPool(_))));
        assert_eq!(engine.pool_ids(), vec!["p".to_string()]);

        engine
            .create_session(
                "s",
                "p",
                SamplerMethod::Oasis,
                OasisConfig::default().with_strata_count(4),
                1,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
            )
            .unwrap();
        assert!(matches!(
            engine.create_session(
                "s",
                "p",
                SamplerMethod::Oasis,
                OasisConfig::default(),
                1,
                LabelSource::external(300)
            ),
            Err(EngineError::DuplicateId(_))
        ));
        assert_eq!(engine.session_ids(), vec!["s".to_string()]);
        engine.delete_session("s").unwrap();
        assert!(matches!(
            engine.delete_session("s"),
            Err(EngineError::UnknownSession(_))
        ));
    }

    #[test]
    fn concurrent_sessions_match_sequential_library_runs_bitwise() {
        let (pool, truth) = pool_and_truth(2500, 2);
        let config = OasisConfig::default().with_strata_count(15);
        let seeds: Vec<u64> = (100..108).collect();
        let steps = 300;

        // Sequential library reference, one run per seed.
        let mut expected = Vec::new();
        for &seed in &seeds {
            let mut oracle = GroundTruthOracle::new(truth.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sampler = OasisSampler::new(&pool, config.clone()).unwrap();
            expected.push(sampler.run(&pool, &mut oracle, &mut rng, steps).unwrap());
        }

        // Engine: 8 sessions over one shared Arc pool, 4 workers.
        let engine = Engine::new();
        engine.load_pool("p", pool).unwrap();
        for &seed in &seeds {
            engine
                .create_session(
                    format!("s{seed}"),
                    "p",
                    SamplerMethod::Oasis,
                    config.clone(),
                    seed,
                    LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone())),
                )
                .unwrap();
        }
        let jobs: Vec<SessionJob> = seeds
            .iter()
            .map(|seed| SessionJob::Steps {
                session: format!("s{seed}"),
                steps,
            })
            .collect();
        let estimates = engine.run_parallel(&jobs, 4).unwrap();

        for (estimate, reference) in estimates.iter().zip(expected.iter()) {
            assert_eq!(estimate.f_measure.to_bits(), reference.f_measure.to_bits());
            assert_eq!(estimate.precision.to_bits(), reference.precision.to_bits());
            assert_eq!(estimate.recall.to_bits(), reference.recall.to_bits());
        }
    }

    #[test]
    fn parallel_budget_jobs_and_error_reporting() {
        let (pool, truth) = pool_and_truth(800, 3);
        let engine = Engine::new();
        engine.load_pool("p", pool).unwrap();
        engine
            .create_session(
                "good",
                "p",
                SamplerMethod::Oasis,
                OasisConfig::default().with_strata_count(6),
                5,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
            )
            .unwrap();
        let jobs = vec![
            SessionJob::Budget {
                session: "good".to_string(),
                budget: 50,
                max_steps: 50_000,
            },
            SessionJob::Steps {
                session: "missing".to_string(),
                steps: 1,
            },
        ];
        let err = engine.run_parallel(&jobs, 2).unwrap_err();
        assert!(matches!(err, EngineError::UnknownSession(_)));

        // Without the bad job the budget run completes.
        let estimates = engine.run_parallel(&jobs[..1], 2).unwrap();
        assert_eq!(estimates.len(), 1);
        let session = engine.session("good").unwrap();
        assert!(session.lock().labels_consumed() >= 50);
    }

    fn scratch_store(tag: &str) -> (std::path::PathBuf, Arc<crate::store::FsCheckpointStore>) {
        let dir =
            std::env::temp_dir().join(format!("oasis-engine-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(crate::store::FsCheckpointStore::open(&dir).unwrap());
        (dir, store)
    }

    fn durable_engine(store: &Arc<crate::store::FsCheckpointStore>) -> Engine {
        Engine::new().with_store(Arc::clone(store) as Arc<dyn CheckpointStore>)
    }

    fn oracle_session(engine: &Engine, id: &str, truth: &[bool], seed: u64) {
        engine
            .create_session(
                id,
                "p",
                SamplerMethod::Oasis,
                OasisConfig::default().with_strata_count(6),
                seed,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth.to_vec())),
            )
            .unwrap();
    }

    fn steps_job(id: &str, steps: usize) -> Vec<SessionJob> {
        vec![SessionJob::Steps {
            session: id.to_string(),
            steps,
        }]
    }

    #[test]
    fn durable_sessions_replay_checkpoint_plus_wal_after_a_crash() {
        let (dir, store) = scratch_store("crash");
        let (pool, truth) = pool_and_truth(800, 31);

        // Reference: a run that never crashed, in a store-less engine.
        let reference = Engine::new();
        reference.load_pool("p", pool.clone()).unwrap();
        oracle_session(&reference, "s", &truth, 5);
        reference.run_parallel(&steps_job("s", 200), 1).unwrap();
        let reference_session = reference.session("s").unwrap();
        let reference_session = reference_session.lock();

        // Durable run: 120 steps, a durable checkpoint, 80 more steps that
        // live only in the WAL — then the process "dies" (engine dropped).
        {
            let engine = durable_engine(&store);
            engine.load_pool("p", pool.clone()).unwrap();
            oracle_session(&engine, "s", &truth, 5);
            engine.run_parallel(&steps_job("s", 120), 1).unwrap();
            engine.checkpoint_to("s").unwrap();
            engine.run_parallel(&steps_job("s", 80), 1).unwrap();
        }

        // Restart: a fresh engine over the same store directory.  The pool
        // is not durable — the client reloads it — but the session state is.
        let revived = Engine::new().with_store(Arc::new(
            crate::store::FsCheckpointStore::open(&dir).unwrap(),
        ) as Arc<dyn CheckpointStore>);
        revived.load_pool("p", pool).unwrap();
        let report = revived.restore_from("s").unwrap();
        assert_eq!(report.replayed, 1, "one WAL record");
        assert!(!report.truncated_tail, "clean shutdown leaves no torn tail");
        let session = revived.session("s").unwrap();
        let session = session.lock();
        assert_eq!(
            session.estimate().f_measure.to_bits(),
            reference_session.estimate().f_measure.to_bits()
        );
        assert_eq!(
            session.labels_consumed(),
            reference_session.labels_consumed()
        );
        let a = session.confidence_interval(0.95).unwrap();
        let b = reference_session.confidence_interval(0.95).unwrap();
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
        assert!(session.variance_tracked());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_checkpoints_idle_sessions_and_rehydrates_on_access() {
        let (dir, store) = scratch_store("lru");
        let (pool, truth) = pool_and_truth(600, 32);

        let reference = Engine::new();
        reference.load_pool("p", pool.clone()).unwrap();
        oracle_session(&reference, "s1", &truth, 7);
        reference.run_parallel(&steps_job("s1", 90), 1).unwrap();

        let engine = durable_engine(&store).with_max_resident(1);
        engine.load_pool("p", pool).unwrap();
        oracle_session(&engine, "s1", &truth, 7);
        engine.run_parallel(&steps_job("s1", 40), 1).unwrap();
        // Creating s2 exceeds the cap: s1 (least recently used) is
        // checkpointed and evicted.
        oracle_session(&engine, "s2", &truth, 8);
        let overviews = engine.session_overviews();
        assert_eq!(overviews.len(), 2);
        let s1 = overviews.iter().find(|o| o.id == "s1").unwrap();
        assert!(!s1.resident, "s1 should have been evicted");
        assert!(!s1.dirty, "eviction checkpoints first");
        assert!(overviews.iter().find(|o| o.id == "s2").unwrap().resident);
        // Both ids stay visible even while one lives only in the store.
        assert_eq!(engine.session_ids(), vec!["s1", "s2"]);

        // Accessing s1 rehydrates it transparently and the run continues
        // bit-identically to the never-evicted reference.
        engine.run_parallel(&steps_job("s1", 50), 1).unwrap();
        let revived = engine.session("s1").unwrap();
        let expected = reference.session("s1").unwrap();
        assert_eq!(
            revived.lock().estimate().f_measure.to_bits(),
            expected.lock().estimate().f_measure.to_bits()
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_from_failures_are_structured_errors() {
        // No store attached: a Store error, not a panic.
        let bare = Engine::new();
        assert!(matches!(bare.restore_from("s"), Err(EngineError::Store(_))));
        assert!(matches!(
            bare.checkpoint_to("s"),
            Err(EngineError::Store(_))
        ));

        let (dir, store) = scratch_store("errors");
        let (pool, truth) = pool_and_truth(400, 33);
        let engine = durable_engine(&store);
        engine.load_pool("p", pool).unwrap();

        // Missing entry.
        assert!(matches!(
            engine.restore_from("ghost"),
            Err(EngineError::UnknownSession(_))
        ));
        // Corrupt entry: bad JSON, and valid JSON of the wrong shape.
        store.put_checkpoint("bad", "definitely not json").unwrap();
        assert!(matches!(
            engine.restore_from("bad"),
            Err(EngineError::Store(_))
        ));
        store
            .put_checkpoint("shape", r#"{"format":"oasis-engine/store-v1","wal_seq":0}"#)
            .unwrap();
        assert!(matches!(
            engine.restore_from("shape"),
            Err(EngineError::Store(_))
        ));
        // Already resident.
        oracle_session(&engine, "s", &truth, 9);
        assert!(matches!(
            engine.restore_from("s"),
            Err(EngineError::DuplicateId(_))
        ));
        // An *interior* corrupt WAL line under a good checkpoint is also
        // structured — only a torn trailing line is forgiven (see below).
        engine.checkpoint_to("s").unwrap();
        engine.delete_session("s").unwrap();
        oracle_session(&engine, "s", &truth, 9);
        store.append_wal("s", "garbage").unwrap();
        store
            .append_wal("s", "{\"seq\":\"0\",\"op\":\"step\",\"steps\":1}")
            .unwrap();
        let fresh = Engine::new().with_store(Arc::new(
            crate::store::FsCheckpointStore::open(&dir).unwrap(),
        ) as Arc<dyn CheckpointStore>);
        let (pool, _) = pool_and_truth(400, 33);
        fresh.load_pool("p", pool).unwrap();
        assert!(matches!(
            fresh.restore_from("s"),
            Err(EngineError::Store(_))
        ));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_trailing_wal_record_is_truncated_and_scrubbed_on_rehydrate() {
        let (dir, store) = scratch_store("torn-tail");
        let (pool, truth) = pool_and_truth(500, 35);
        {
            let engine = durable_engine(&store);
            engine.load_pool("p", pool.clone()).unwrap();
            oracle_session(&engine, "s", &truth, 11);
            engine.run_parallel(&steps_job("s", 60), 1).unwrap();
        }
        // Crash mid-append: half a record trails the log.
        store.append_wal("s", "{\"seq\":\"1\",\"op\":\"st").unwrap();

        let revived = durable_engine(&store);
        revived.load_pool("p", pool).unwrap();
        let report = revived.restore_from("s").unwrap();
        assert_eq!(report.replayed, 1, "the intact record replays");
        assert!(report.truncated_tail, "the torn tail is reported");
        // The scrub removed the torn line from disk, so a second restart
        // replays a clean log.
        let lines = store.read_wal("s").unwrap();
        assert!(
            lines.iter().all(|l| WalRecord::parse(l).is_ok()),
            "scrubbed WAL must be fully parseable: {lines:?}"
        );
        // And the revived session still serves traffic.
        revived.run_parallel(&steps_job("s", 10), 1).unwrap();

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_store_faults_are_retried_and_counted() {
        use crate::fault::{FaultKind, FaultyStore, StoreOp};
        let (dir, inner) = scratch_store("retry");
        let faulty = Arc::new(
            FaultyStore::new(inner as Arc<dyn CheckpointStore>)
                .with_fault(StoreOp::AppendWal, 0, FaultKind::Transient)
                .with_fault(StoreOp::PutCheckpoint, 1, FaultKind::Transient),
        );
        let (pool, truth) = pool_and_truth(400, 36);
        let engine = Engine::new()
            .with_store(Arc::clone(&faulty) as Arc<dyn CheckpointStore>)
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                base_delay: Duration::from_micros(10),
            });
        faulty.attach_metrics(engine.metrics_handle());
        engine.load_pool("p", pool).unwrap();
        oracle_session(&engine, "s", &truth, 13);
        // Both the first WAL append and the checkpoint write hit a transient
        // fault; the retry absorbs them invisibly.
        engine.run_parallel(&steps_job("s", 20), 1).unwrap();
        engine.checkpoint_to("s").unwrap();
        assert_eq!(engine.metrics().counter(Counter::RetriedWrite), 2);
        assert_eq!(engine.metrics().counter(Counter::FaultInjected), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_retries_become_a_permanent_store_error() {
        use crate::fault::{FaultKind, FaultyStore, StoreOp};
        let (dir, inner) = scratch_store("exhaust");
        let faulty = Arc::new(FaultyStore::new(inner as Arc<dyn CheckpointStore>));
        // More consecutive transients than the policy tolerates.
        for index in 0..4 {
            faulty.fail_nth(StoreOp::AppendWal, index, FaultKind::Transient);
        }
        let (pool, truth) = pool_and_truth(300, 37);
        let engine = Engine::new()
            .with_store(Arc::clone(&faulty) as Arc<dyn CheckpointStore>)
            .with_retry_policy(RetryPolicy {
                max_retries: 2,
                base_delay: Duration::from_micros(10),
            });
        engine.load_pool("p", pool).unwrap();
        oracle_session(&engine, "s", &truth, 17);
        let err = engine.run_parallel(&steps_job("s", 5), 1).unwrap_err();
        assert!(matches!(err, EngineError::Store(_)), "{err}");
        assert!(err.to_string().contains("after 2 retries"), "{err}");
        // The engine is not wedged: the faults are spent, traffic resumes.
        engine.run_parallel(&steps_job("s", 5), 1).unwrap();

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stored_ids_stay_reserved_and_delete_clears_the_store() {
        let (dir, store) = scratch_store("reserve");
        let (pool, truth) = pool_and_truth(300, 34);
        {
            let engine = durable_engine(&store);
            engine.load_pool("p", pool.clone()).unwrap();
            oracle_session(&engine, "s", &truth, 3);
        }
        // After a "restart" the stored id still owns its name.
        let engine = durable_engine(&store);
        engine.load_pool("p", pool).unwrap();
        assert!(matches!(
            engine.create_session(
                "s",
                "p",
                SamplerMethod::Oasis,
                OasisConfig::default().with_strata_count(4),
                1,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth.clone()))
            ),
            Err(EngineError::DuplicateId(_))
        ));
        // Deleting a stored-but-not-resident session clears the store entry
        // and frees the id.
        engine.delete_session("s").unwrap();
        assert!(store.load_checkpoint("s").unwrap().is_none());
        oracle_session(&engine, "s", &truth, 3);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_session_under_new_name() {
        let (pool, truth) = pool_and_truth(500, 4);
        let engine = Engine::new();
        engine.load_pool("p", pool).unwrap();
        engine
            .create_session(
                "orig",
                "p",
                SamplerMethod::Oasis,
                OasisConfig::default().with_strata_count(6),
                9,
                LabelSource::GroundTruth(GroundTruthOracle::new(truth)),
            )
            .unwrap();
        let handle = engine.session("orig").unwrap();
        handle.lock().step(50).unwrap();
        let checkpoint = handle.lock().checkpoint();

        engine.restore_session("copy", checkpoint).unwrap();
        let copy = engine.session("copy").unwrap();
        let a = handle.lock().step(50).unwrap();
        let b = copy.lock().step(50).unwrap();
        assert_eq!(a.f_measure.to_bits(), b.f_measure.to_bits());
    }
}
