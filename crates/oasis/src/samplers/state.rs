//! Serializable sampler state for checkpoint/resume.
//!
//! [`SamplerState`] captures everything an [`OasisSampler`] needs to continue
//! a run bit-for-bit: the configuration, the exact stratification (as raw
//! allocations, since re-stratifying a different pool could tie-break
//! differently), the Beta–Bernoulli posterior counts, the AIS estimator's
//! weighted sums, and the initialisation products.  The caller's RNG is *not*
//! part of this state — samplers borrow their generator — so resumable
//! drivers (the `oasis-engine` crate) persist the RNG words alongside.
//!
//! The state is a plain data type; JSON conversion lives in
//! [`crate::serial`].

use super::oasis_sampler::{OasisConfig, OasisSampler};
use crate::bayes::BetaBernoulliModel;
use crate::error::Result;
use crate::estimator::AisEstimator;
use crate::pool::ScoredPool;
use crate::strata::Strata;
use serde::{Deserialize, Serialize};

/// Snapshot of an [`AisEstimator`]: the four weighted sums of Eqn. 3 plus the
/// iteration count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorState {
    /// F-measure weight α.
    pub alpha: f64,
    /// Σ w·ℓ·ℓ̂ — weighted true positives.
    pub weighted_tp: f64,
    /// Σ w·ℓ̂ — weighted predicted positives.
    pub weighted_predicted: f64,
    /// Σ w·ℓ — weighted actual positives.
    pub weighted_actual: f64,
    /// Σ w — total weight.
    pub total_weight: f64,
    /// Number of observations folded in.
    pub iterations: usize,
}

impl EstimatorState {
    /// Capture an estimator's accumulated sums.
    pub fn capture(estimator: &AisEstimator) -> Self {
        let (weighted_tp, weighted_predicted, weighted_actual, total_weight) = estimator.sums();
        EstimatorState {
            alpha: estimator.alpha(),
            weighted_tp,
            weighted_predicted,
            weighted_actual,
            total_weight,
            iterations: estimator.iterations(),
        }
    }

    /// Rebuild the estimator; the restored accumulator continues bit-for-bit.
    ///
    /// # Errors
    /// Propagates [`AisEstimator::from_parts`] validation (corrupt sums).
    pub fn rebuild(&self) -> Result<AisEstimator> {
        AisEstimator::from_parts(
            self.alpha,
            self.weighted_tp,
            self.weighted_predicted,
            self.weighted_actual,
            self.total_weight,
            self.iterations,
        )
    }
}

/// Full serializable state of an [`OasisSampler`].
///
/// Produced by [`OasisSampler::state`], consumed by
/// [`OasisSampler::from_state`].  A round trip through this type (and through
/// its JSON form, [`crate::serial`]) is exact: resuming a restored sampler
/// with a restored RNG produces the same estimates, bit-for-bit, as never
/// having stopped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerState {
    /// The sampler configuration.
    pub config: OasisConfig,
    /// The exact stratification: pool indices per stratum.
    pub allocations: Vec<Vec<usize>>,
    /// Prior pseudo-counts for label 1, per stratum.
    pub prior_gamma0: Vec<f64>,
    /// Prior pseudo-counts for label 0, per stratum.
    pub prior_gamma1: Vec<f64>,
    /// Observed label-1 counts per stratum.
    pub observed_matches: Vec<f64>,
    /// Observed label-0 counts per stratum.
    pub observed_non_matches: Vec<f64>,
    /// Whether prior decay (Remark 4) is enabled.
    pub decay_prior: bool,
    /// The AIS estimator accumulator.
    pub estimator: EstimatorState,
    /// The Algorithm 2 initial F-measure guess.
    pub initial_f_guess: f64,
    /// The instrumental distribution used at the most recent step.
    pub current_proposal: Vec<f64>,
}

impl SamplerState {
    /// Rebuild a sampler against `pool`.
    ///
    /// The pool must be the one the state was captured against (the engine
    /// layer verifies this with a fingerprint); `Strata::from_allocations`
    /// recomputes the per-stratum summary statistics from the pool, which
    /// reproduces the original values exactly because the summation order is
    /// identical.
    ///
    /// # Errors
    /// Propagates validation failures from the config, strata and model
    /// constructors (e.g. allocations referencing items outside the pool).
    pub fn rebuild(self, pool: &ScoredPool) -> Result<OasisSampler> {
        // States may come from untrusted checkpoint documents: an item
        // allocated twice (within or across strata) would silently skew the
        // stratum weights and every later estimate, so reject it here
        // (out-of-range indices are rejected by `from_allocations` below).
        let mut seen = vec![false; pool.len()];
        for stratum in &self.allocations {
            for &item in stratum {
                if let Some(flag) = seen.get_mut(item) {
                    if *flag {
                        return Err(crate::error::Error::InvalidParameter {
                            name: "allocations",
                            message: format!("pool item {item} allocated to more than one slot"),
                        });
                    }
                    *flag = true;
                }
            }
        }
        let strata = Strata::from_allocations(pool, self.allocations)?;
        let model = BetaBernoulliModel::from_state(
            self.prior_gamma0,
            self.prior_gamma1,
            self.observed_matches,
            self.observed_non_matches,
            self.decay_prior,
        )?;
        OasisSampler::from_parts(
            self.config,
            strata,
            model,
            self.estimator.rebuild()?,
            self.initial_f_guess,
            self.current_proposal,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use crate::samplers::Sampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool_and_truth(n: usize, seed: u64) -> (ScoredPool, Vec<bool>) {
        crate::test_fixtures::pool_and_truth(n, seed, 0.08)
    }

    #[test]
    fn state_round_trip_is_bit_identical() {
        let (pool, truth) = pool_and_truth(1500, 4);
        let mut oracle = GroundTruthOracle::new(truth);
        let mut rng = StdRng::seed_from_u64(5);
        let mut sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(12)).unwrap();
        for _ in 0..200 {
            sampler.step(&pool, &mut oracle, &mut rng).unwrap();
        }
        let state = sampler.state();
        let restored = state.clone().rebuild(&pool).unwrap();

        // The restored sampler is indistinguishable: same estimate bits, same
        // posterior, same proposal.
        let a = sampler.estimate();
        let b = restored.estimate();
        assert_eq!(a.f_measure.to_bits(), b.f_measure.to_bits());
        assert_eq!(a.precision.to_bits(), b.precision.to_bits());
        assert_eq!(a.recall.to_bits(), b.recall.to_bits());
        assert_eq!(sampler.pi_estimates(), restored.pi_estimates());
        assert_eq!(sampler.current_proposal(), restored.current_proposal());
        assert_eq!(sampler.compute_proposal(), restored.compute_proposal());

        // Continuing both sides with the same RNG stays identical.
        let mut rng_a = StdRng::seed_from_u64(99);
        let mut rng_b = StdRng::seed_from_u64(99);
        let mut oracle_a = GroundTruthOracle::new(vec![true; pool.len()]);
        let mut oracle_b = GroundTruthOracle::new(vec![true; pool.len()]);
        let mut sampler_b = restored;
        let mut sampler_a = sampler;
        for _ in 0..100 {
            let oa = sampler_a.step(&pool, &mut oracle_a, &mut rng_a).unwrap();
            let ob = sampler_b.step(&pool, &mut oracle_b, &mut rng_b).unwrap();
            assert_eq!(oa.item, ob.item);
            assert_eq!(oa.weight.to_bits(), ob.weight.to_bits());
        }
    }

    #[test]
    fn propose_batch_matches_repeated_propose_bitwise() {
        let (pool, _) = pool_and_truth(600, 8);
        let mut a = OasisSampler::new(&pool, OasisConfig::default().with_strata_count(8)).unwrap();
        let mut b = a.clone();
        let mut rng_a = StdRng::seed_from_u64(55);
        let mut rng_b = StdRng::seed_from_u64(55);
        let batch = a.propose_batch(&pool, &mut rng_a, 20);
        let singles: Vec<_> = (0..20).map(|_| b.propose(&pool, &mut rng_b)).collect();
        assert_eq!(batch.len(), 20);
        for (x, y) in batch.iter().zip(singles.iter()) {
            assert_eq!(x.item, y.item);
            assert_eq!(x.stratum, y.stratum);
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
        }
        assert_eq!(a.current_proposal(), b.current_proposal());
        assert!(a.propose_batch(&pool, &mut rng_a, 0).is_empty());
    }

    #[test]
    fn rebuild_rejects_overlapping_allocations() {
        let (pool, _) = pool_and_truth(50, 9);
        let sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(4)).unwrap();
        // Duplicate within one stratum.
        let mut state = sampler.state();
        let item = state.allocations[0][0];
        state.allocations[0].push(item);
        assert!(state.rebuild(&pool).is_err());
        // Duplicate across strata.
        let mut state = sampler.state();
        let item = state.allocations[0][0];
        state.allocations[1].push(item);
        assert!(state.rebuild(&pool).is_err());
    }

    #[test]
    fn rebuild_rejects_allocations_outside_the_pool() {
        let (pool, _) = pool_and_truth(50, 6);
        let sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(4)).unwrap();
        let mut state = sampler.state();
        state.allocations[0].push(10_000);
        assert!(state.rebuild(&pool).is_err());
    }

    #[test]
    fn rebuild_rejects_corrupt_model_rows() {
        let (pool, _) = pool_and_truth(50, 7);
        let sampler =
            OasisSampler::new(&pool, OasisConfig::default().with_strata_count(4)).unwrap();
        let mut state = sampler.state();
        state.observed_matches.pop();
        assert!(state.rebuild(&pool).is_err());
    }
}
