//! Figure 5: expected absolute error after a fixed label budget, for five
//! classifier families on the Abt-Buy pool and the four sampling methods.
//!
//! The paper trains a neural network (NN), AdaBoost (AB), logistic regression
//! (LR), an RBF-kernel SVM (R-SVM) and a linear SVM (L-SVM) on Abt-Buy,
//! evaluates each with Passive / Stratified / IS / OASIS after 5000 labels,
//! and reports the error with ~95% confidence intervals.  OASIS is typically
//! an order of magnitude more precise than IS.

use crate::curves::{method_curve, CurveConfig};
use crate::methods::Method;
use crate::pools::{pipeline_pool, ClassifierKind};
use crate::report::{fmt_float, TextTable};
use er_core::datasets::DatasetProfile;

/// The error of one (classifier, method) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure5Cell {
    /// Classifier label (NN, AB, LR, R-SVM, L-SVM).
    pub classifier: String,
    /// Sampling method label.
    pub method: String,
    /// Expected absolute error at the budget.
    pub absolute_error: f64,
    /// Half-width of the ~95% confidence interval over the repeats.
    pub confidence_half_width: f64,
}

/// The reproduced Figure 5 data.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure5 {
    /// One cell per (classifier, method) pair.
    pub cells: Vec<Figure5Cell>,
    /// The label budget each method consumed.
    pub budget: usize,
    /// Pool scale used.
    pub scale: f64,
    /// Repeats per cell.
    pub repeats: usize,
}

/// Configuration of the Figure 5 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure5Config {
    /// Pool scale (1.0 = the paper's 53,753-pair Abt-Buy pool).
    pub scale: f64,
    /// Label budget (the paper uses 5000 at full scale; scaled budgets keep
    /// the budget/pool ratio comparable).
    pub budget: usize,
    /// Repeats per (classifier, method) cell.
    pub repeats: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Which classifiers to include (empty = all five).
    pub classifiers: Vec<ClassifierKind>,
}

impl Default for Figure5Config {
    fn default() -> Self {
        Figure5Config {
            scale: 0.1,
            budget: 500,
            repeats: 50,
            seed: 2017,
            threads: 4,
            classifiers: Vec::new(),
        }
    }
}

/// The sampling methods compared in Figure 5.
pub fn figure5_methods() -> Vec<Method> {
    vec![
        Method::Passive,
        Method::Stratified { strata: 30 },
        Method::ImportanceSampling,
        Method::oasis(30),
    ]
}

/// Run the Figure 5 experiment.
pub fn run(config: &Figure5Config) -> Figure5 {
    let profile = DatasetProfile::abt_buy();
    let classifiers = if config.classifiers.is_empty() {
        ClassifierKind::all()
    } else {
        config.classifiers.clone()
    };
    let mut cells = Vec::new();
    for (index, &kind) in classifiers.iter().enumerate() {
        let result = pipeline_pool(
            &profile,
            config.scale,
            kind,
            false,
            config.seed + index as u64,
        )
        .expect("Abt-Buy has a record-level generator");
        let pool = result.experiment_pool;
        let curve_config = CurveConfig {
            checkpoints: vec![config.budget.min(pool.len())],
            repeats: config.repeats,
            alpha: 0.5,
            seed: config.seed,
            threads: config.threads,
        };
        for method in figure5_methods() {
            let curve = method_curve(&pool, method, &curve_config);
            let error = curve.absolute_error[0];
            // 95% CI half-width ≈ 1.96 · σ(|F̂ − F|) / √repeats; we approximate
            // the error's spread with the estimate's std. dev.
            let half_width = 1.96 * curve.std_dev[0] / (config.repeats as f64).sqrt();
            cells.push(Figure5Cell {
                classifier: kind.label().to_string(),
                method: method.label(),
                absolute_error: error,
                confidence_half_width: half_width,
            });
        }
    }
    Figure5 {
        cells,
        budget: config.budget,
        scale: config.scale,
        repeats: config.repeats,
    }
}

impl Figure5 {
    /// Render as a classifier × method table of `error ± ci`.
    pub fn render(&self) -> String {
        let methods: Vec<String> = figure5_methods().iter().map(|m| m.label()).collect();
        let mut header = vec!["Classifier".to_string()];
        header.extend(methods.iter().cloned());
        let mut table = TextTable::new(header);
        let mut classifiers: Vec<String> = Vec::new();
        for cell in &self.cells {
            if !classifiers.contains(&cell.classifier) {
                classifiers.push(cell.classifier.clone());
            }
        }
        for classifier in &classifiers {
            let mut row = vec![classifier.clone()];
            for method in &methods {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| &c.classifier == classifier && &c.method == method);
                row.push(match cell {
                    Some(c) => format!(
                        "{} ± {}",
                        fmt_float(c.absolute_error, 4),
                        fmt_float(c.confidence_half_width, 4)
                    ),
                    None => "-".to_string(),
                });
            }
            table.add_row(row);
        }
        format!(
            "Figure 5: E|F̂1/2 − F1/2| after {} labels on Abt-Buy (scale {:.3}, {} repeats)\n{}",
            self.budget,
            self.scale,
            self.repeats,
            table.render()
        )
    }

    /// The cell for a given classifier and method, if present.
    pub fn cell(&self, classifier: &str, method: &str) -> Option<&Figure5Cell> {
        self.cells
            .iter()
            .find(|c| c.classifier == classifier && c.method == method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Figure5Config {
        Figure5Config {
            scale: 0.01,
            budget: 60,
            repeats: 6,
            seed: 21,
            threads: 2,
            classifiers: vec![
                ClassifierKind::LinearSvm,
                ClassifierKind::LogisticRegression,
            ],
        }
    }

    #[test]
    fn produces_one_cell_per_classifier_method_pair() {
        let figure = run(&tiny_config());
        assert_eq!(figure.cells.len(), 2 * 4);
        let classifiers: Vec<&str> = figure.cells.iter().map(|c| c.classifier.as_str()).collect();
        assert!(classifiers.contains(&"L-SVM"));
        assert!(classifiers.contains(&"LR"));
        for cell in &figure.cells {
            assert!(cell.confidence_half_width >= 0.0 || cell.confidence_half_width.is_nan());
        }
    }

    #[test]
    fn oasis_cell_error_is_competitive_with_passive() {
        let figure = run(&Figure5Config {
            repeats: 10,
            ..tiny_config()
        });
        let oasis = figure.cell("L-SVM", "OASIS 30").unwrap();
        let passive = figure.cell("L-SVM", "Passive").unwrap();
        // On a tiny pool the gap can be small, but OASIS should not be
        // dramatically worse when both are defined.
        if oasis.absolute_error.is_finite() && passive.absolute_error.is_finite() {
            assert!(oasis.absolute_error <= passive.absolute_error + 0.15);
        }
    }

    #[test]
    fn render_is_a_classifier_by_method_grid() {
        let figure = run(&tiny_config());
        let text = figure.render();
        assert!(text.contains("Figure 5"));
        assert!(text.contains("OASIS 30"));
        assert!(text.contains("±"));
    }
}
