//! Cumulative-√F (CSF) stratification — paper Algorithm 1.
//!
//! The CSF rule of Dalenius & Hodges (1959) forms strata with approximately
//! minimal intra-stratum score variance: it histograms the scores into `M`
//! fine bins, accumulates the square roots of the bin counts, and cuts the
//! cumulative-√F axis into `K̃` equal-width pieces.  Under the heavy-tailed
//! score distributions typical of ER this produces a few very large low-score
//! strata and many small high-score strata (paper Figure 1).

use super::{Strata, Stratifier};
use crate::error::{Error, Result};
use crate::pool::ScoredPool;

/// CSF stratifier (paper Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct CsfStratifier {
    /// Desired number of strata `K̃` (the realised number may be smaller).
    pub desired_strata: usize,
    /// Number of histogram bins `M` used to estimate the score distribution.
    pub histogram_bins: usize,
}

impl CsfStratifier {
    /// Create a CSF stratifier with the given target number of strata and the
    /// paper's default of `M = 2000` histogram bins (large relative to K so
    /// the cumulative-√F curve is well resolved).
    pub fn new(desired_strata: usize) -> Self {
        CsfStratifier {
            desired_strata,
            histogram_bins: 2000,
        }
    }

    /// Override the number of histogram bins `M`.
    pub fn with_histogram_bins(mut self, bins: usize) -> Self {
        self.histogram_bins = bins;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.desired_strata == 0 {
            return Err(Error::InvalidParameter {
                name: "desired_strata",
                message: "must be at least 1".to_string(),
            });
        }
        if self.histogram_bins == 0 {
            return Err(Error::InvalidParameter {
                name: "histogram_bins",
                message: "must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

impl Stratifier for CsfStratifier {
    fn stratify(&self, pool: &ScoredPool) -> Result<Strata> {
        self.validate()?;
        let scores = pool.scores();
        let (min, max) = pool.score_range();

        // Degenerate case: all scores identical → a single stratum.
        if (max - min).abs() < f64::EPSILON {
            let all: Vec<usize> = (0..pool.len()).collect();
            return Strata::from_allocations(pool, vec![all]);
        }

        let m = self.histogram_bins;
        let width = (max - min) / m as f64;

        // Lines 1–2: histogram of the scores over M equal-width bins.
        let mut counts = vec![0usize; m];
        for &s in scores {
            let mut bin = ((s - min) / width) as usize;
            if bin >= m {
                bin = m - 1;
            }
            counts[bin] += 1;
        }

        // Line 3: cumulative √F over the bins.
        let mut csf = Vec::with_capacity(m);
        let mut acc = 0.0;
        for &c in &counts {
            acc += (c as f64).sqrt();
            csf.push(acc);
        }
        let total_csf = *csf.last().expect("at least one histogram bin");

        // Lines 4–7: equal-width cut points on the cumulative-√F scale.
        let k_tilde = self.desired_strata;
        let w = total_csf / k_tilde as f64;

        // Lines 8–18: map the cut points back to score-scale boundaries.
        // `boundaries` holds the upper score edge of each stratum except the
        // last (which is implicitly `max`).
        let mut boundaries: Vec<f64> = Vec::with_capacity(k_tilde);
        let mut next_cut = 1usize; // index of the next csf bin boundary (k · w)
        for (j, &csf_j) in csf.iter().enumerate() {
            if boundaries.len() + 1 >= k_tilde {
                break;
            }
            if csf_j >= next_cut as f64 * w {
                // Upper score edge of histogram bin j.
                let edge = min + (j + 1) as f64 * width;
                boundaries.push(edge);
                // Skip any cut points that fell inside this same bin.
                while csf_j >= next_cut as f64 * w {
                    next_cut += 1;
                }
            }
        }

        // Line 19: allocate items to strata using the score boundaries.
        let k = boundaries.len() + 1;
        let mut allocations: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (index, &s) in scores.iter().enumerate() {
            // First boundary strictly greater than the score determines the stratum.
            let stratum = boundaries.partition_point(|&b| s >= b);
            allocations[stratum].push(index);
        }

        Strata::from_allocations(pool, allocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn imbalanced_pool(n: usize, seed: u64) -> ScoredPool {
        // Heavy-tailed score distribution typical of ER: score density piles
        // up toward 0 (squaring a uniform draw skews it low), plus a small
        // cluster near 1.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scores = Vec::with_capacity(n);
        let mut predictions = Vec::with_capacity(n);
        for _ in 0..n {
            let is_matchy = rng.gen_bool(0.02);
            let s: f64 = if is_matchy {
                0.7 + 0.3 * rng.gen::<f64>()
            } else {
                0.3 * rng.gen::<f64>().powi(2)
            };
            scores.push(s);
            predictions.push(s > 0.5);
        }
        ScoredPool::new(scores, predictions).unwrap()
    }

    #[test]
    fn produces_at_most_requested_strata() {
        let pool = imbalanced_pool(5000, 1);
        for k in [2, 10, 30, 60] {
            let strata = CsfStratifier::new(k).stratify(&pool).unwrap();
            assert!(strata.len() <= k, "requested {k}, got {}", strata.len());
            assert!(strata.len() >= 2);
        }
    }

    #[test]
    fn every_item_is_allocated_exactly_once() {
        let pool = imbalanced_pool(2000, 2);
        let strata = CsfStratifier::new(30).stratify(&pool).unwrap();
        let mut seen = vec![false; pool.len()];
        for k in 0..strata.len() {
            for &i in strata.members(k) {
                assert!(!seen[i], "item {i} allocated twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some item never allocated");
    }

    #[test]
    fn strata_are_ordered_by_score() {
        let pool = imbalanced_pool(3000, 3);
        let strata = CsfStratifier::new(20).stratify(&pool).unwrap();
        let means = strata.mean_scores();
        for w in means.windows(2) {
            assert!(
                w[0] <= w[1] + 1e-9,
                "mean scores must be non-decreasing across strata: {means:?}"
            );
        }
    }

    #[test]
    fn heavy_tail_gives_large_low_score_strata() {
        // Reproduces the qualitative shape of paper Figure 1: the lowest-score
        // stratum should be (much) larger than the highest-score stratum.
        let pool = imbalanced_pool(20_000, 4);
        let strata = CsfStratifier::new(30).stratify(&pool).unwrap();
        let first = strata.size(0);
        let last = strata.size(strata.len() - 1);
        assert!(
            first > 5 * last,
            "low-score stratum ({first}) should dwarf high-score stratum ({last})"
        );
    }

    #[test]
    fn constant_scores_collapse_to_one_stratum() {
        let pool = ScoredPool::new(vec![0.5; 10], vec![false; 10]).unwrap();
        let strata = CsfStratifier::new(5).stratify(&pool).unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata.size(0), 10);
    }

    #[test]
    fn single_requested_stratum_is_fine() {
        let pool = imbalanced_pool(100, 5);
        let strata = CsfStratifier::new(1).stratify(&pool).unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata.size(0), 100);
    }

    #[test]
    fn zero_strata_rejected() {
        let pool = imbalanced_pool(100, 6);
        assert!(CsfStratifier::new(0).stratify(&pool).is_err());
        assert!(CsfStratifier::new(5)
            .with_histogram_bins(0)
            .stratify(&pool)
            .is_err());
    }

    #[test]
    fn works_with_uncalibrated_scores() {
        // Raw SVM decision values (can be negative / unbounded).
        let mut rng = StdRng::seed_from_u64(9);
        let scores: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>() * 8.0 - 6.0).collect();
        let predictions: Vec<bool> = scores.iter().map(|&s| s > 0.0).collect();
        let pool = ScoredPool::new(scores, predictions).unwrap();
        let strata = CsfStratifier::new(15).stratify(&pool).unwrap();
        assert!(strata.len() > 1);
        let allocated: usize = (0..strata.len()).map(|k| strata.size(k)).sum();
        assert_eq!(allocated, 1000);
    }

    #[test]
    fn more_strata_than_items_degrades_gracefully() {
        let pool =
            ScoredPool::new(vec![0.1, 0.2, 0.9, 0.95], vec![false, false, true, true]).unwrap();
        let strata = CsfStratifier::new(50).stratify(&pool).unwrap();
        assert!(strata.len() <= 4);
        let allocated: usize = (0..strata.len()).map(|k| strata.size(k)).sum();
        assert_eq!(allocated, 4);
    }
}
