//! Offline subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! implements the slice of proptest the workspace's property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges,
//!   tuples, regex-subset string literals and [`collection::vec`];
//! * [`arbitrary::any`] for primitive types;
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and `prop_assume!`;
//! * a deterministic [`test_runner`] that replays seeds recorded in
//!   `proptest-regressions/<file>.txt` before running fresh cases, records
//!   the seed of any new failure there, and honours the `PROPTEST_CASES`
//!   environment override so CI can run a deeper pass than local dev.
//!
//! Unsupported (by design, to stay small): shrinking, `prop_oneof!` over
//! weighted arms, recursive strategies, full regex string generation.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Namespace mirror so `prop::collection::vec(...)` works.
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Run the property-test functions in the block `cases` times each with
/// freshly generated inputs; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($config:expr)) => {};
    (
        @cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                &($config),
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                |__proptest_rng| {
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                    )+
                    let __proptest_result: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    __proptest_result
                },
            );
        }
        $crate::__proptest_impl!(@cfg ($config) $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body; failure reports the
/// generating seed and aborts the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, $($fmt)+);
    }};
}

/// Discard the current case (not counted as a failure) when a precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
