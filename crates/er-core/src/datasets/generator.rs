//! Record-level synthetic dataset generation.
//!
//! A [`GeneratorConfig`] describes how many records each source contains, how
//! many cross-source matches exist and how heavily matched records are
//! corrupted; [`SyntheticDataset::generate`] then materialises both sources,
//! the ground-truth relation `R` and the full candidate pair space.
//!
//! Two-source linkage and single-source deduplication (the `cora` case) are
//! both supported.

use super::corruption::{corrupt_values, CorruptionConfig};
use super::vocabulary::EntityKind;
use crate::normalize::normalize_records;
use crate::pairs::{PairSpace, RecordPair};
use crate::record::{Record, Schema};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// Configuration of a synthetic ER dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// The entity domain (products, citations, restaurants).
    pub kind: EntityKind,
    /// Number of records in source A.
    pub source_a_size: usize,
    /// Number of records in source B (ignored for deduplication datasets).
    pub source_b_size: usize,
    /// Number of matching record pairs to plant.
    pub match_count: usize,
    /// Corruption applied to the second description of each matched entity.
    pub corruption: CorruptionConfig,
    /// Single-source deduplication mode: source B is the same as source A and
    /// the pair space is the upper triangle of A × A.  Matches are planted as
    /// clusters of duplicate records inside the single source.
    pub deduplication: bool,
    /// In deduplication mode, the size of each duplicate cluster (every
    /// cluster of size `m` contributes `m·(m−1)/2` matching pairs).
    pub dedup_cluster_size: usize,
}

impl GeneratorConfig {
    /// A small two-source linkage configuration suitable for unit tests.
    pub fn small_linkage(kind: EntityKind) -> Self {
        GeneratorConfig {
            kind,
            source_a_size: 60,
            source_b_size: 60,
            match_count: 12,
            corruption: CorruptionConfig::moderate(),
            deduplication: false,
            dedup_cluster_size: 0,
        }
    }

    /// A small deduplication configuration suitable for unit tests.
    pub fn small_dedup(kind: EntityKind) -> Self {
        GeneratorConfig {
            kind,
            source_a_size: 80,
            source_b_size: 0,
            match_count: 0, // implied by the clusters
            corruption: CorruptionConfig::light(),
            deduplication: true,
            dedup_cluster_size: 4,
        }
    }
}

/// A fully materialised synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The shared schema of both sources.
    pub schema: Schema,
    /// Records of source A.
    pub source_a: Vec<Record>,
    /// Records of source B (identical to `source_a` for deduplication
    /// datasets).
    pub source_b: Vec<Record>,
    /// The candidate pair space with ground truth.
    pub pairs: PairSpace,
    /// The configuration this dataset was generated from.
    pub config: GeneratorConfig,
}

impl SyntheticDataset {
    /// Generate a dataset according to `config`, deterministically given the
    /// RNG state.
    pub fn generate<R: Rng + ?Sized>(config: GeneratorConfig, rng: &mut R) -> Self {
        if config.deduplication {
            Self::generate_dedup(config, rng)
        } else {
            Self::generate_linkage(config, rng)
        }
    }

    fn generate_linkage<R: Rng + ?Sized>(config: GeneratorConfig, rng: &mut R) -> Self {
        let kind = config.kind;
        let schema = kind.schema();
        let match_count = config
            .match_count
            .min(config.source_a_size)
            .min(config.source_b_size);

        // Source A: one record per distinct entity.
        let mut source_a: Vec<Record> = Vec::with_capacity(config.source_a_size);
        let mut entity_values = Vec::with_capacity(config.source_a_size);
        for id in 0..config.source_a_size {
            let values = kind.generate_entity(id as u64, rng);
            entity_values.push(values.clone());
            source_a.push(Record::new(id as u64, values));
        }

        // Pick which A records get a matching partner in B.
        let mut a_indices: Vec<usize> = (0..config.source_a_size).collect();
        a_indices.shuffle(rng);
        let matched_a: Vec<usize> = a_indices.into_iter().take(match_count).collect();

        // Source B: corrupted copies of the matched entities plus fresh entities.
        let mut source_b: Vec<Record> = Vec::with_capacity(config.source_b_size);
        let mut matches: HashSet<RecordPair> = HashSet::with_capacity(match_count);
        for (b_index, &a_index) in matched_a.iter().enumerate() {
            let corrupted = corrupt_values(&entity_values[a_index], &config.corruption, rng);
            source_b.push(Record::new(b_index as u64, corrupted));
            matches.insert(RecordPair {
                a: a_index,
                b: b_index,
            });
        }
        for (offset, b_index) in (match_count..config.source_b_size).enumerate() {
            let entity_id = config.source_a_size as u64 + offset as u64;
            let values = kind.generate_entity(entity_id, rng);
            source_b.push(Record::new(b_index as u64, values));
        }
        // Shuffle source B so matched records are not all at the front, then
        // remap the ground-truth pairs accordingly.
        let mut order: Vec<usize> = (0..source_b.len()).collect();
        order.shuffle(rng);
        let mut position_of = vec![0usize; source_b.len()];
        for (new_pos, &old_pos) in order.iter().enumerate() {
            position_of[old_pos] = new_pos;
        }
        let mut shuffled_b: Vec<Option<Record>> = vec![None; source_b.len()];
        for (old_pos, record) in source_b.into_iter().enumerate() {
            shuffled_b[position_of[old_pos]] = Some(record);
        }
        let source_b: Vec<Record> = shuffled_b.into_iter().map(|r| r.expect("filled")).collect();
        let matches: HashSet<RecordPair> = matches
            .into_iter()
            .map(|p| RecordPair {
                a: p.a,
                b: position_of[p.b],
            })
            .collect();

        let mut source_b = source_b;
        normalize_records(&schema, &mut source_a);
        normalize_records(&schema, &mut source_b);

        let pairs = PairSpace::full_product(source_a.len(), source_b.len(), matches);
        SyntheticDataset {
            schema,
            source_a,
            source_b,
            pairs,
            config,
        }
    }

    fn generate_dedup<R: Rng + ?Sized>(config: GeneratorConfig, rng: &mut R) -> Self {
        let kind = config.kind;
        let schema = kind.schema();
        let n = config.source_a_size;
        let cluster_size = config.dedup_cluster_size.max(1);

        // Build records as clusters of duplicates of the same latent entity.
        let mut records: Vec<Record> = Vec::with_capacity(n);
        let mut cluster_of: Vec<usize> = Vec::with_capacity(n);
        let mut cluster_id = 0usize;
        let mut entity_id = 0u64;
        while records.len() < n {
            let canonical = kind.generate_entity(entity_id, rng);
            entity_id += 1;
            let remaining = n - records.len();
            let this_cluster = cluster_size.min(remaining);
            for copy in 0..this_cluster {
                let values = if copy == 0 {
                    canonical.clone()
                } else {
                    corrupt_values(&canonical, &config.corruption, rng)
                };
                records.push(Record::new(records.len() as u64, values));
                cluster_of.push(cluster_id);
            }
            cluster_id += 1;
        }
        // Shuffle record order while keeping track of cluster membership.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut shuffled_records = Vec::with_capacity(n);
        let mut shuffled_clusters = Vec::with_capacity(n);
        for &old in &order {
            shuffled_records.push(records[old].clone());
            shuffled_clusters.push(cluster_of[old]);
        }
        let mut records = shuffled_records;
        normalize_records(&schema, &mut records);

        // Candidate pairs: upper triangle; matches: same-cluster pairs.
        let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
        let mut matches = HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let pair = RecordPair { a: i, b: j };
                pairs.push(pair);
                if shuffled_clusters[i] == shuffled_clusters[j] {
                    matches.insert(pair);
                }
            }
        }
        let pair_space = PairSpace::from_candidates(pairs, matches);
        SyntheticDataset {
            schema,
            source_a: records.clone(),
            source_b: records,
            pairs: pair_space,
            config,
        }
    }

    /// Number of candidate pairs in the dataset's pair space.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Number of true matching pairs among the candidates.
    pub fn match_count(&self) -> usize {
        self.pairs.candidate_match_count()
    }

    /// Class-imbalance ratio (non-matches : matches).
    pub fn imbalance_ratio(&self) -> Option<f64> {
        self.pairs.imbalance_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linkage_dataset_has_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = GeneratorConfig {
            kind: EntityKind::Product,
            source_a_size: 50,
            source_b_size: 40,
            match_count: 10,
            corruption: CorruptionConfig::moderate(),
            deduplication: false,
            dedup_cluster_size: 0,
        };
        let dataset = SyntheticDataset::generate(config, &mut rng);
        assert_eq!(dataset.source_a.len(), 50);
        assert_eq!(dataset.source_b.len(), 40);
        assert_eq!(dataset.pair_count(), 2000);
        assert_eq!(dataset.match_count(), 10);
        assert_eq!(dataset.imbalance_ratio(), Some(199.0));
        assert_eq!(dataset.schema.len(), 4);
    }

    #[test]
    fn match_count_is_capped_by_source_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = GeneratorConfig {
            kind: EntityKind::Restaurant,
            source_a_size: 5,
            source_b_size: 8,
            match_count: 100,
            corruption: CorruptionConfig::light(),
            deduplication: false,
            dedup_cluster_size: 0,
        };
        let dataset = SyntheticDataset::generate(config, &mut rng);
        assert_eq!(dataset.match_count(), 5);
    }

    #[test]
    fn matched_pairs_are_textually_similar() {
        use crate::similarity::ngram_jaccard;
        let mut rng = StdRng::seed_from_u64(3);
        let config = GeneratorConfig {
            kind: EntityKind::Product,
            source_a_size: 80,
            source_b_size: 80,
            match_count: 20,
            corruption: CorruptionConfig::light(),
            deduplication: false,
            dedup_cluster_size: 0,
        };
        let dataset = SyntheticDataset::generate(config, &mut rng);
        let mut match_sim = 0.0;
        let mut match_n = 0;
        let mut non_match_sim = 0.0;
        let mut non_match_n = 0;
        for &pair in dataset.pairs.pairs().iter().take(4000) {
            let a_name = dataset.source_a[pair.a].value(0).as_text().unwrap_or("");
            let b_name = dataset.source_b[pair.b].value(0).as_text().unwrap_or("");
            let sim = ngram_jaccard(a_name, b_name, 3);
            if dataset.pairs.is_match(pair) {
                match_sim += sim;
                match_n += 1;
            } else {
                non_match_sim += sim;
                non_match_n += 1;
            }
        }
        if match_n > 0 && non_match_n > 0 {
            assert!(
                match_sim / match_n as f64 > non_match_sim / non_match_n as f64 + 0.2,
                "matches should look much more similar than non-matches"
            );
        }
    }

    #[test]
    fn dedup_dataset_builds_upper_triangle_with_cluster_matches() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = GeneratorConfig {
            kind: EntityKind::Citation,
            source_a_size: 20,
            source_b_size: 0,
            match_count: 0,
            corruption: CorruptionConfig::light(),
            deduplication: true,
            dedup_cluster_size: 4,
        };
        let dataset = SyntheticDataset::generate(config, &mut rng);
        assert_eq!(dataset.pair_count(), 20 * 19 / 2);
        // 5 clusters of 4 → 5 · C(4,2) = 30 matching pairs.
        assert_eq!(dataset.match_count(), 30);
        // No self pairs and a < b always.
        for pair in dataset.pairs.pairs() {
            assert!(pair.a < pair.b);
        }
        // Sources are identical for dedup.
        assert_eq!(dataset.source_a.len(), dataset.source_b.len());
    }

    #[test]
    fn generation_is_deterministic_given_seed() {
        let config = GeneratorConfig::small_linkage(EntityKind::Citation);
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        let d1 = SyntheticDataset::generate(config.clone(), &mut rng1);
        let d2 = SyntheticDataset::generate(config, &mut rng2);
        assert_eq!(d1.source_a, d2.source_a);
        assert_eq!(d1.source_b, d2.source_b);
        assert_eq!(d1.pairs.labels(), d2.pairs.labels());
    }

    #[test]
    fn small_configs_are_valid() {
        let mut rng = StdRng::seed_from_u64(5);
        let linkage = SyntheticDataset::generate(
            GeneratorConfig::small_linkage(EntityKind::Product),
            &mut rng,
        );
        assert!(linkage.match_count() > 0);
        let dedup = SyntheticDataset::generate(
            GeneratorConfig::small_dedup(EntityKind::Citation),
            &mut rng,
        );
        assert!(dedup.match_count() > 0);
        assert!(dedup.imbalance_ratio().unwrap() > 1.0);
    }
}
