//! Similarity feature extraction for record pairs.
//!
//! For each pair of aligned fields a scalar similarity feature is computed
//! according to the field's type (paper Section 6.1.2, "Similarity features"):
//! trigram Jaccard for short text, tf–idf cosine for long text, normalised
//! absolute difference for numbers, exact match for categorical codes.  A
//! missing value on either side yields a feature of 0 for that field.

use crate::record::{FieldType, FieldValue, Record, Schema};
use crate::similarity::{exact_match, ngram_jaccard, normalized_numeric_similarity, CosineTfIdf};

/// Extracts per-field similarity feature vectors for record pairs.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    schema: Schema,
    /// One fitted tf–idf model per long-text field (indexed by field position,
    /// `None` for other field types).
    tfidf_models: Vec<Option<CosineTfIdf>>,
}

impl FeatureExtractor {
    /// Fit the extractor on both data sources: long-text fields get a tf–idf
    /// vocabulary built from the union of both sources' values.
    pub fn fit(schema: &Schema, source_a: &[Record], source_b: &[Record]) -> Self {
        let mut tfidf_models = Vec::with_capacity(schema.len());
        for (index, field) in schema.fields().iter().enumerate() {
            if field.field_type == FieldType::LongText {
                let corpus: Vec<String> = source_a
                    .iter()
                    .chain(source_b.iter())
                    .filter_map(|r| r.value(index).as_text().map(str::to_string))
                    .collect();
                tfidf_models.push(Some(CosineTfIdf::fit(&corpus)));
            } else {
                tfidf_models.push(None);
            }
        }
        FeatureExtractor {
            schema: schema.clone(),
            tfidf_models,
        }
    }

    /// Number of features produced per record pair (= number of schema fields).
    pub fn feature_count(&self) -> usize {
        self.schema.len()
    }

    /// The schema the extractor was fit for.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Compute the similarity feature for one field of a record pair.
    fn field_similarity(&self, index: usize, a: &FieldValue, b: &FieldValue) -> f64 {
        if a.is_missing() || b.is_missing() {
            return 0.0;
        }
        match self.schema.fields()[index].field_type {
            FieldType::ShortText => match (a.as_text(), b.as_text()) {
                (Some(x), Some(y)) => ngram_jaccard(x, y, 3),
                _ => 0.0,
            },
            FieldType::LongText => match (a.as_text(), b.as_text()) {
                (Some(x), Some(y)) => self.tfidf_models[index]
                    .as_ref()
                    .map(|m| m.similarity(x, y))
                    .unwrap_or(0.0),
                _ => 0.0,
            },
            FieldType::Numeric => match (a.as_number(), b.as_number()) {
                (Some(x), Some(y)) => normalized_numeric_similarity(x, y),
                _ => 0.0,
            },
            FieldType::Categorical => match (a.as_text(), b.as_text()) {
                (Some(x), Some(y)) => exact_match(x, y),
                _ => 0.0,
            },
        }
    }

    /// Compute the similarity feature vector for a record pair.
    pub fn features(&self, a: &Record, b: &Record) -> Vec<f64> {
        (0..self.schema.len())
            .map(|index| self.field_similarity(index, a.value(index), b.value(index)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("name", FieldType::ShortText),
            ("description", FieldType::LongText),
            ("price", FieldType::Numeric),
            ("brand", FieldType::Categorical),
        ])
    }

    fn record(id: u64, name: &str, desc: &str, price: f64, brand: &str) -> Record {
        Record::new(
            id,
            vec![
                FieldValue::Text(name.into()),
                FieldValue::Text(desc.into()),
                FieldValue::Number(price),
                FieldValue::Text(brand.into()),
            ],
        )
    }

    fn sources() -> (Vec<Record>, Vec<Record>) {
        let a = vec![
            record(
                0,
                "canon powershot a520",
                "compact digital camera four megapixel",
                199.0,
                "canon",
            ),
            record(
                1,
                "hp laserjet 1020",
                "monochrome laser printer for home office",
                129.0,
                "hp",
            ),
        ];
        let b = vec![
            record(
                0,
                "canon power shot a520",
                "digital camera compact 4 megapixel",
                205.0,
                "canon",
            ),
            record(
                1,
                "sony mdr headphones",
                "over ear studio headphones",
                89.0,
                "sony",
            ),
        ];
        (a, b)
    }

    #[test]
    fn feature_vector_has_one_entry_per_field() {
        let (a, b) = sources();
        let extractor = FeatureExtractor::fit(&schema(), &a, &b);
        assert_eq!(extractor.feature_count(), 4);
        let f = extractor.features(&a[0], &b[0]);
        assert_eq!(f.len(), 4);
        assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn matching_pair_scores_higher_than_non_matching() {
        let (a, b) = sources();
        let extractor = FeatureExtractor::fit(&schema(), &a, &b);
        let matching: f64 = extractor.features(&a[0], &b[0]).iter().sum();
        let non_matching: f64 = extractor.features(&a[0], &b[1]).iter().sum();
        assert!(
            matching > non_matching + 1.0,
            "matching sum {matching} vs non-matching {non_matching}"
        );
    }

    #[test]
    fn missing_values_give_zero_feature() {
        let (a, b) = sources();
        let extractor = FeatureExtractor::fit(&schema(), &a, &b);
        let with_missing = Record::new(
            9,
            vec![
                FieldValue::Missing,
                FieldValue::Text("compact digital camera".into()),
                FieldValue::Missing,
                FieldValue::Text("canon".into()),
            ],
        );
        let f = extractor.features(&with_missing, &b[0]);
        assert_eq!(f[0], 0.0);
        assert_eq!(f[2], 0.0);
        assert!(f[1] > 0.0);
        assert_eq!(f[3], 1.0);
    }

    #[test]
    fn categorical_field_is_exact_match() {
        let (a, b) = sources();
        let extractor = FeatureExtractor::fit(&schema(), &a, &b);
        let f_same = extractor.features(&a[0], &b[0]);
        let f_diff = extractor.features(&a[0], &b[1]);
        assert_eq!(f_same[3], 1.0);
        assert_eq!(f_diff[3], 0.0);
    }

    #[test]
    fn numeric_similarity_reflects_price_gap() {
        let (a, b) = sources();
        let extractor = FeatureExtractor::fit(&schema(), &a, &b);
        let close = extractor.features(&a[0], &b[0])[2];
        let far = extractor.features(&a[1], &b[1])[2];
        assert!(close > far);
    }

    #[test]
    fn schema_accessor_round_trips() {
        let (a, b) = sources();
        let extractor = FeatureExtractor::fit(&schema(), &a, &b);
        assert_eq!(extractor.schema().len(), 4);
    }
}
