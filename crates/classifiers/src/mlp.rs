//! A one-hidden-layer neural network (multi-layer perceptron).
//!
//! The "NN" classifier of the paper's Figure 5: a single hidden layer with a
//! tanh activation and a sigmoid output, trained by stochastic gradient
//! descent on the cross-entropy loss.

use crate::dataset::TrainingSet;
use crate::linalg::{sigmoid, Standardizer};
use crate::Classifier;
use rand::Rng;

/// Hyperparameters for the MLP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Number of hidden units.
    pub hidden_units: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of epochs.
    pub epochs: usize,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden_units: 16,
            learning_rate: 0.05,
            epochs: 120,
            l2: 1e-5,
        }
    }
}

/// A trained one-hidden-layer MLP.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    /// Hidden-layer weights, `hidden_units × input_dim` (row-major).
    hidden_weights: Vec<Vec<f64>>,
    hidden_bias: Vec<f64>,
    output_weights: Vec<f64>,
    output_bias: f64,
    standardizer: Standardizer,
}

impl MlpClassifier {
    /// Train with default hyperparameters.
    pub fn train<R: Rng + ?Sized>(data: &TrainingSet, rng: &mut R) -> Self {
        Self::train_with(data, MlpConfig::default(), rng)
    }

    /// Train with explicit hyperparameters.
    ///
    /// # Panics
    /// Panics if the training set is empty or `hidden_units` is zero.
    pub fn train_with<R: Rng + ?Sized>(data: &TrainingSet, config: MlpConfig, rng: &mut R) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty training set");
        assert!(config.hidden_units > 0, "need at least one hidden unit");
        let standardizer = Standardizer::fit(&data.features);
        let rows: Vec<Vec<f64>> = data
            .features
            .iter()
            .map(|r| standardizer.transform(r))
            .collect();
        let n = rows.len();
        let d = data.feature_count();
        let h = config.hidden_units;

        // Xavier-style initialisation.
        let init_scale = (1.0 / d.max(1) as f64).sqrt();
        let mut hidden_weights: Vec<Vec<f64>> = (0..h)
            .map(|_| {
                (0..d)
                    .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * init_scale)
                    .collect()
            })
            .collect();
        let mut hidden_bias = vec![0.0; h];
        let mut output_weights: Vec<f64> = (0..h)
            .map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * (1.0 / h as f64).sqrt())
            .collect();
        let mut output_bias = 0.0;

        let mut hidden_activation = vec![0.0; h];
        for epoch in 0..config.epochs {
            let eta = config.learning_rate / (1.0 + 0.02 * epoch as f64);
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                let x = &rows[i];
                let target = f64::from(u8::from(data.labels[i]));

                // Forward pass.
                for j in 0..h {
                    let mut z = hidden_bias[j];
                    for (w, &xi) in hidden_weights[j].iter().zip(x.iter()) {
                        z += w * xi;
                    }
                    hidden_activation[j] = z.tanh();
                }
                let mut output_z = output_bias;
                for j in 0..h {
                    output_z += output_weights[j] * hidden_activation[j];
                }
                let prediction = sigmoid(output_z);

                // Backward pass (cross-entropy + sigmoid → simple error form).
                let output_error = prediction - target;
                for j in 0..h {
                    let hidden_error =
                        output_error * output_weights[j] * (1.0 - hidden_activation[j].powi(2));
                    output_weights[j] -=
                        eta * (output_error * hidden_activation[j] + config.l2 * output_weights[j]);
                    for (w, &xi) in hidden_weights[j].iter_mut().zip(x.iter()) {
                        *w -= eta * (hidden_error * xi + config.l2 * *w);
                    }
                    hidden_bias[j] -= eta * hidden_error;
                }
                output_bias -= eta * output_error;
            }
        }
        MlpClassifier {
            hidden_weights,
            hidden_bias,
            output_weights,
            output_bias,
            standardizer,
        }
    }

    /// The probability of the positive class for a feature vector.
    pub fn probability(&self, features: &[f64]) -> f64 {
        let x = self.standardizer.transform(features);
        let mut output_z = self.output_bias;
        for (j, weights) in self.hidden_weights.iter().enumerate() {
            let mut z = self.hidden_bias[j];
            for (w, &xi) in weights.iter().zip(x.iter()) {
                z += w * xi;
            }
            output_z += self.output_weights[j] * z.tanh();
        }
        sigmoid(output_z)
    }

    /// Number of hidden units.
    pub fn hidden_units(&self) -> usize {
        self.hidden_weights.len()
    }
}

impl Classifier for MlpClassifier {
    fn score(&self, features: &[f64]) -> f64 {
        self.probability(features)
    }

    fn decision_threshold(&self) -> f64 {
        0.5
    }

    fn name(&self) -> &'static str {
        "NN"
    }

    fn scores_are_probabilities(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear_svm::test_support::synthetic_pair_data;
    use crate::metrics::{accuracy, roc_auc};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_a_separable_problem() {
        let train = synthetic_pair_data(600, 0.4, 31);
        let test = synthetic_pair_data(400, 0.4, 32);
        let mut rng = StdRng::seed_from_u64(33);
        let mlp = MlpClassifier::train(&train, &mut rng);
        let predictions: Vec<bool> = test.features.iter().map(|f| mlp.predict(f)).collect();
        assert!(accuracy(&predictions, &test.labels) > 0.9);
        let scores: Vec<f64> = test.features.iter().map(|f| mlp.score(f)).collect();
        assert!(roc_auc(&scores, &test.labels) > 0.95);
    }

    #[test]
    fn learns_a_non_linear_problem() {
        // XOR-style data a linear model cannot fit but an MLP can.
        let mut rng = StdRng::seed_from_u64(34);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..800 {
            let a = rng.gen::<f64>() > 0.5;
            let b = rng.gen::<f64>() > 0.5;
            let mut noise = || 0.1 * (rng.gen::<f64>() - 0.5);
            features.push(vec![
                f64::from(u8::from(a)) + noise(),
                f64::from(u8::from(b)) + noise(),
            ]);
            labels.push(a ^ b);
        }
        let data = TrainingSet::new(features, labels);
        let config = MlpConfig {
            hidden_units: 12,
            epochs: 300,
            learning_rate: 0.1,
            l2: 0.0,
        };
        let mlp = MlpClassifier::train_with(&data, config, &mut rng);
        let predictions: Vec<bool> = data.features.iter().map(|f| mlp.predict(f)).collect();
        let acc = accuracy(&predictions, &data.labels);
        assert!(acc > 0.9, "XOR accuracy {acc}");
    }

    #[test]
    fn outputs_are_probabilities() {
        let train = synthetic_pair_data(300, 0.3, 35);
        let mut rng = StdRng::seed_from_u64(36);
        let mlp = MlpClassifier::train(&train, &mut rng);
        assert!(mlp.scores_are_probabilities());
        assert_eq!(mlp.name(), "NN");
        assert_eq!(mlp.decision_threshold(), 0.5);
        assert_eq!(mlp.hidden_units(), MlpConfig::default().hidden_units);
        for f in &train.features {
            assert!((0.0..=1.0).contains(&mlp.score(f)));
        }
    }

    #[test]
    #[should_panic(expected = "hidden unit")]
    fn zero_hidden_units_panics() {
        let train = synthetic_pair_data(50, 0.4, 37);
        let mut rng = StdRng::seed_from_u64(38);
        MlpClassifier::train_with(
            &train,
            MlpConfig {
                hidden_units: 0,
                ..MlpConfig::default()
            },
            &mut rng,
        );
    }
}
