//! [`AnySampler`] — enum dispatch over the four sampling methods.
//!
//! The [`Sampler`]/[`InteractiveSampler`] traits have generic methods and are
//! therefore not object-safe; `AnySampler` is the concrete dispatcher that
//! lets method-agnostic drivers (the experiment runner, the `oasis-engine`
//! session layer, the `oasis-serve` protocol) hold "some sampler" as a plain
//! value, construct one from a [`SamplerMethod`] tag, and round-trip it
//! through the method-tagged [`SamplerState`].

use super::sharding::ShardedSampler;
use super::state::{SamplerMethod, SamplerState};
use super::{
    ImportanceSampler, InteractiveSampler, OasisConfig, OasisSampler, PassiveSampler, Proposal,
    Sampler, SamplerDiagnostics, StratifiedSampler,
};
use crate::error::Result;
use crate::estimator::Estimate;
use crate::pool::ScoredPool;
use rand::Rng;

/// Enum dispatcher over the concrete sampler types.
// The OASIS variant is a few hundred bytes bigger than the baselines
// (posterior tallies + cached proposal CDF).  Samplers are few and
// long-lived — one per session, never moved on the propose/apply hot
// path — so boxing the variant would buy nothing but indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum AnySampler {
    /// Passive sampler.
    Passive(PassiveSampler),
    /// Proportional stratified sampler.
    Stratified(StratifiedSampler),
    /// Static importance sampler.
    Importance(ImportanceSampler),
    /// OASIS sampler.
    Oasis(OasisSampler),
    /// Sharded ensemble of any of the above (one inner sampler per shard);
    /// see [`ShardedSampler`].
    Sharded(ShardedSampler),
}

/// One `match` arm per variant, delegating an expression to the inner
/// sampler — keeps the trait impl below free of 5× repetition.
macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            AnySampler::Passive($inner) => $body,
            AnySampler::Stratified($inner) => $body,
            AnySampler::Importance($inner) => $body,
            AnySampler::Oasis($inner) => $body,
            AnySampler::Sharded($inner) => $body,
        }
    };
}

impl AnySampler {
    /// Build a fresh sampler of the given method over `pool`.
    ///
    /// All methods draw their hyperparameters from the one [`OasisConfig`]
    /// (the paper uses the same α, K and τ across the comparison, so the
    /// shared config doubles as the method-agnostic wire config):
    ///
    /// | method | uses |
    /// |---|---|
    /// | `oasis` | every field |
    /// | `passive` | `alpha` |
    /// | `importance` | `alpha`, `score_threshold` |
    /// | `stratified` | `alpha`, `strata_count` |
    ///
    /// # Errors
    /// Invalid configuration (the full config is validated regardless of
    /// method, so a bad field never silently rides along) or a degenerate
    /// pool.
    pub fn build(method: SamplerMethod, pool: &ScoredPool, config: &OasisConfig) -> Result<Self> {
        config.validate()?;
        Ok(match method {
            SamplerMethod::Passive => AnySampler::Passive(PassiveSampler::new(config.alpha)),
            SamplerMethod::Stratified => AnySampler::Stratified(StratifiedSampler::new(
                pool,
                config.alpha,
                config.strata_count,
            )?),
            SamplerMethod::Importance => AnySampler::Importance(ImportanceSampler::new(
                pool,
                config.alpha,
                config.score_threshold,
            )?),
            SamplerMethod::Oasis => AnySampler::Oasis(OasisSampler::new(pool, config.clone())?),
        })
    }

    /// Build a sharded sampler: `pool` partitioned into `shards` contiguous
    /// shards, one fresh `method` sampler per shard (see
    /// [`ShardedSampler::new`] for the seed discipline).  `shards == 1` is
    /// valid and bit-identical to the flat [`AnySampler::build`] sampler.
    ///
    /// # Errors
    /// Invalid shard count, invalid config, or any inner constructor
    /// failure.
    pub fn build_sharded(
        method: SamplerMethod,
        pool: &ScoredPool,
        config: &OasisConfig,
        shards: usize,
        seed: u64,
    ) -> Result<Self> {
        Ok(AnySampler::Sharded(ShardedSampler::new(
            method, pool, config, shards, seed,
        )?))
    }

    /// Number of shards the sampler runs over — `1` for every flat sampler.
    pub fn shard_count(&self) -> usize {
        match self {
            AnySampler::Sharded(s) => s.shard_count(),
            _ => 1,
        }
    }
}

impl InteractiveSampler for AnySampler {
    fn propose<R: Rng + ?Sized>(&mut self, pool: &ScoredPool, rng: &mut R) -> Proposal {
        dispatch!(self, s => s.propose(pool, rng))
    }

    fn propose_batch<R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        rng: &mut R,
        count: usize,
    ) -> Vec<Proposal> {
        dispatch!(self, s => s.propose_batch(pool, rng, count))
    }

    fn apply_label(&mut self, proposal: &Proposal, label: bool) {
        dispatch!(self, s => s.apply_label(proposal, label))
    }

    fn estimate(&self) -> Estimate {
        dispatch!(self, s => s.estimate())
    }

    fn name(&self) -> &'static str {
        dispatch!(self, s => s.name())
    }

    fn method(&self) -> SamplerMethod {
        dispatch!(self, s => s.method())
    }

    fn strata_len(&self) -> usize {
        dispatch!(self, s => s.strata_len())
    }

    fn diagnostics(&self) -> SamplerDiagnostics {
        dispatch!(self, s => s.diagnostics())
    }

    fn instrumental_snapshot(&self) -> Vec<f64> {
        dispatch!(self, s => s.instrumental_snapshot())
    }

    fn proposal_mass(&self) -> f64 {
        dispatch!(self, s => s.proposal_mass())
    }

    fn state(&self) -> SamplerState {
        dispatch!(self, s => s.state())
    }

    /// Rebuild whichever sampler the state's method tag names.  The sharded
    /// topology is matched on the variant first — its `method()` reports the
    /// *inner* method, so tag dispatch alone would mis-route it.
    fn from_state(pool: &ScoredPool, state: SamplerState) -> Result<Self> {
        if let SamplerState::Sharded(_) = &state {
            return Ok(AnySampler::Sharded(ShardedSampler::from_state(
                pool, state,
            )?));
        }
        Ok(match state.method() {
            SamplerMethod::Passive => AnySampler::Passive(PassiveSampler::from_state(pool, state)?),
            SamplerMethod::Stratified => {
                AnySampler::Stratified(StratifiedSampler::from_state(pool, state)?)
            }
            SamplerMethod::Importance => {
                AnySampler::Importance(ImportanceSampler::from_state(pool, state)?)
            }
            SamplerMethod::Oasis => AnySampler::Oasis(OasisSampler::from_state(pool, state)?),
        })
    }
}

impl Sampler for AnySampler {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GroundTruthOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool_and_truth(n: usize, seed: u64) -> (ScoredPool, Vec<bool>) {
        crate::test_fixtures::pool_and_truth(n, seed, 0.15)
    }

    fn config() -> OasisConfig {
        OasisConfig::default().with_strata_count(6)
    }

    #[test]
    fn build_covers_every_method_and_reports_it() {
        let (pool, _) = pool_and_truth(300, 1);
        for method in SamplerMethod::ALL {
            let sampler = AnySampler::build(method, &pool, &config()).unwrap();
            assert_eq!(sampler.method(), method);
            assert!(sampler.strata_len() >= 1);
        }
        assert!(AnySampler::build(
            SamplerMethod::Passive,
            &pool,
            &config().with_alpha(f64::NAN)
        )
        .is_err());
    }

    #[test]
    fn any_dispatch_is_bit_identical_to_the_concrete_sampler() {
        let (pool, truth) = pool_and_truth(800, 2);
        for method in SamplerMethod::ALL {
            let mut any = AnySampler::build(method, &pool, &config()).unwrap();
            let mut rng_any = StdRng::seed_from_u64(7);
            let mut oracle_any = GroundTruthOracle::new(truth.clone());

            let mut rng_raw = StdRng::seed_from_u64(7);
            let mut oracle_raw = GroundTruthOracle::new(truth.clone());
            // The concrete counterpart, driven through its own Sampler impl.
            let mut concrete = AnySampler::build(method, &pool, &config()).unwrap();

            for _ in 0..120 {
                let a = any.step(&pool, &mut oracle_any, &mut rng_any).unwrap();
                let b = match &mut concrete {
                    AnySampler::Passive(s) => s.step(&pool, &mut oracle_raw, &mut rng_raw),
                    AnySampler::Stratified(s) => s.step(&pool, &mut oracle_raw, &mut rng_raw),
                    AnySampler::Importance(s) => s.step(&pool, &mut oracle_raw, &mut rng_raw),
                    AnySampler::Oasis(s) => s.step(&pool, &mut oracle_raw, &mut rng_raw),
                    AnySampler::Sharded(s) => s.step(&pool, &mut oracle_raw, &mut rng_raw),
                }
                .unwrap();
                assert_eq!(a.item, b.item, "{method}");
                assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{method}");
            }
            let ea = any.estimate();
            let eb = concrete.estimate();
            assert_eq!(ea.f_measure.to_bits(), eb.f_measure.to_bits(), "{method}");
        }
    }

    #[test]
    fn state_round_trips_through_the_tagged_enum_for_every_method() {
        let (pool, truth) = pool_and_truth(600, 3);
        for method in SamplerMethod::ALL {
            let mut sampler = AnySampler::build(method, &pool, &config()).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let mut oracle = GroundTruthOracle::new(truth.clone());
            for _ in 0..80 {
                sampler.step(&pool, &mut oracle, &mut rng).unwrap();
            }
            let state = sampler.state();
            assert_eq!(state.method(), method);
            let mut restored = AnySampler::from_state(&pool, state).unwrap();
            assert_eq!(restored.method(), method);
            assert_eq!(
                restored.estimate().f_measure.to_bits(),
                sampler.estimate().f_measure.to_bits(),
                "{method}"
            );

            // Continuing both with the same RNG stream stays identical.
            let mut rng_a = StdRng::seed_from_u64(13);
            let mut rng_b = StdRng::seed_from_u64(13);
            let mut oracle_a = GroundTruthOracle::new(truth.clone());
            let mut oracle_b = GroundTruthOracle::new(truth.clone());
            for _ in 0..50 {
                let a = sampler.step(&pool, &mut oracle_a, &mut rng_a).unwrap();
                let b = restored.step(&pool, &mut oracle_b, &mut rng_b).unwrap();
                assert_eq!(a.item, b.item, "{method}");
                assert_eq!(a.weight.to_bits(), b.weight.to_bits(), "{method}");
            }
        }
    }

    #[test]
    fn instrumental_snapshot_is_method_agnostic() {
        // Every method reports a live instrumental distribution over its
        // strata — the method-agnostic replacement for downcasting to the
        // OASIS sampler.
        let (pool, _) = pool_and_truth(100, 4);
        for method in SamplerMethod::ALL {
            let sampler = AnySampler::build(method, &pool, &config()).unwrap();
            let snapshot = sampler.instrumental_snapshot();
            assert_eq!(snapshot.len(), sampler.strata_len(), "{method}");
            assert!(
                snapshot.iter().all(|&p| p.is_finite() && p >= 0.0),
                "{method}"
            );
            assert!(
                (snapshot.iter().sum::<f64>() - 1.0).abs() < 1e-9,
                "{method}"
            );
            // The snapshot is exactly what diagnostics expose.
            assert_eq!(snapshot, sampler.diagnostics().instrumental, "{method}");
        }
    }

    #[test]
    fn sharded_build_round_trips_through_the_enum() {
        let (pool, truth) = pool_and_truth(400, 5);
        let mut sampler =
            AnySampler::build_sharded(SamplerMethod::Oasis, &pool, &config(), 4, 17).unwrap();
        assert_eq!(sampler.shard_count(), 4);
        assert_eq!(sampler.method(), SamplerMethod::Oasis);
        let flat = AnySampler::build(SamplerMethod::Oasis, &pool, &config()).unwrap();
        assert_eq!(flat.shard_count(), 1);

        let mut rng = StdRng::seed_from_u64(18);
        let mut oracle = GroundTruthOracle::new(truth);
        for _ in 0..120 {
            sampler.step(&pool, &mut oracle, &mut rng).unwrap();
        }
        let state = sampler.state();
        // The tag reports the inner method; the variant carries the topology.
        assert_eq!(state.method(), SamplerMethod::Oasis);
        let restored = AnySampler::from_state(&pool, state).unwrap();
        assert_eq!(restored.shard_count(), 4);
        assert_eq!(
            restored.estimate().f_measure.to_bits(),
            sampler.estimate().f_measure.to_bits()
        );
    }
}
