//! Regenerate Table 2 (evaluation pools and L-SVM operating points).
//!
//! Usage: `cargo run --release -p experiments --bin table2 -- --scale=0.05 --seed=1`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = experiments::parse_arg(&args, "scale", 0.05f64);
    let seed = experiments::parse_arg(&args, "seed", 2017u64);
    let table = experiments::table2::run(scale, seed);
    println!("{}", table.render());
}
