//! The sampling methods under comparison (paper Section 6.2).
//!
//! [`Method`] names a method + its hyperparameters; [`AnySampler`] is a
//! concrete enum dispatcher over the sampler types of the `oasis` crate so the
//! experiment runner can treat them uniformly (the [`oasis::Sampler`] trait
//! has generic methods and is therefore not object-safe).

use oasis::estimator::Estimate;
use oasis::oracle::Oracle;
use oasis::pool::ScoredPool;
use oasis::samplers::{
    ImportanceSampler, OasisConfig, OasisSampler, PassiveSampler, Sampler, StepOutcome,
    StratifiedSampler,
};
use oasis::Result;
use rand::Rng;

/// A named sampling method with its hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Uniform sampling with the plain estimator.
    Passive,
    /// Proportional stratified sampling with `strata` CSF strata.
    Stratified {
        /// Number of strata (the paper uses 30).
        strata: usize,
    },
    /// Static importance sampling (Sawade et al.).
    ImportanceSampling,
    /// OASIS with `strata` CSF strata.
    Oasis {
        /// Number of strata.
        strata: usize,
        /// Greediness parameter ε.
        epsilon: f64,
    },
}

impl Method {
    /// The default method line-up of the paper's Figure 2 for an ER pool:
    /// Passive, IS, Stratified (K=30) and OASIS with K = 30, 60, 120.
    pub fn figure2_lineup() -> Vec<Method> {
        vec![
            Method::Passive,
            Method::ImportanceSampling,
            Method::Stratified { strata: 30 },
            Method::oasis(30),
            Method::oasis(60),
            Method::oasis(120),
        ]
    }

    /// The reduced line-up used for the balanced tweets100k pool
    /// (K = 10, 20, 40 in the paper).
    pub fn figure2_lineup_balanced() -> Vec<Method> {
        vec![
            Method::Passive,
            Method::ImportanceSampling,
            Method::Stratified { strata: 30 },
            Method::oasis(10),
            Method::oasis(20),
            Method::oasis(40),
        ]
    }

    /// OASIS with the paper's default ε = 10⁻³.
    pub fn oasis(strata: usize) -> Method {
        Method::Oasis {
            strata,
            epsilon: 1e-3,
        }
    }

    /// A short display label, matching the paper's legends
    /// (e.g. `"OASIS 30"`).
    pub fn label(&self) -> String {
        match self {
            Method::Passive => "Passive".to_string(),
            Method::Stratified { .. } => "Stratified".to_string(),
            Method::ImportanceSampling => "IS".to_string(),
            Method::Oasis { strata, .. } => format!("OASIS {strata}"),
        }
    }

    /// Build a fresh sampler of this method for the given pool.
    ///
    /// `alpha` is the F-measure weight and `score_threshold` the decision
    /// threshold used when squashing non-probability scores.
    pub fn build(&self, pool: &ScoredPool, alpha: f64, score_threshold: f64) -> Result<AnySampler> {
        Ok(match *self {
            Method::Passive => AnySampler::Passive(PassiveSampler::new(alpha)),
            Method::Stratified { strata } => {
                AnySampler::Stratified(StratifiedSampler::new(pool, alpha, strata)?)
            }
            Method::ImportanceSampling => {
                AnySampler::Importance(ImportanceSampler::new(pool, alpha, score_threshold)?)
            }
            Method::Oasis { strata, epsilon } => {
                let config = OasisConfig::default()
                    .with_alpha(alpha)
                    .with_strata_count(strata)
                    .with_epsilon(epsilon)
                    .with_score_threshold(score_threshold);
                AnySampler::Oasis(OasisSampler::new(pool, config)?)
            }
        })
    }
}

/// Enum dispatcher over the concrete sampler types.
#[derive(Debug, Clone)]
pub enum AnySampler {
    /// Passive sampler.
    Passive(PassiveSampler),
    /// Proportional stratified sampler.
    Stratified(StratifiedSampler),
    /// Static importance sampler.
    Importance(ImportanceSampler),
    /// OASIS sampler.
    Oasis(OasisSampler),
}

impl AnySampler {
    /// One sampling iteration (see [`oasis::Sampler::step`]).
    pub fn step<O: Oracle, R: Rng + ?Sized>(
        &mut self,
        pool: &ScoredPool,
        oracle: &mut O,
        rng: &mut R,
    ) -> Result<StepOutcome> {
        match self {
            AnySampler::Passive(s) => s.step(pool, oracle, rng),
            AnySampler::Stratified(s) => s.step(pool, oracle, rng),
            AnySampler::Importance(s) => s.step(pool, oracle, rng),
            AnySampler::Oasis(s) => s.step(pool, oracle, rng),
        }
    }

    /// The current estimate.
    pub fn estimate(&self) -> Estimate {
        match self {
            AnySampler::Passive(s) => s.estimate(),
            AnySampler::Stratified(s) => s.estimate(),
            AnySampler::Importance(s) => s.estimate(),
            AnySampler::Oasis(s) => s.estimate(),
        }
    }

    /// Access the inner OASIS sampler, if this is one (used by the
    /// convergence diagnostics of Figure 4).
    pub fn as_oasis(&self) -> Option<&OasisSampler> {
        match self {
            AnySampler::Oasis(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oasis::oracle::GroundTruthOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_pool() -> (ScoredPool, Vec<bool>) {
        let scores = vec![0.9, 0.85, 0.7, 0.3, 0.2, 0.1, 0.05, 0.02];
        let predictions = vec![true, true, true, false, false, false, false, false];
        let truth = vec![true, true, false, false, false, false, false, false];
        (ScoredPool::new(scores, predictions).unwrap(), truth)
    }

    #[test]
    fn labels_are_human_readable() {
        assert_eq!(Method::Passive.label(), "Passive");
        assert_eq!(Method::Stratified { strata: 30 }.label(), "Stratified");
        assert_eq!(Method::ImportanceSampling.label(), "IS");
        assert_eq!(Method::oasis(60).label(), "OASIS 60");
    }

    #[test]
    fn lineups_have_expected_composition() {
        let lineup = Method::figure2_lineup();
        assert_eq!(lineup.len(), 6);
        assert!(matches!(lineup[0], Method::Passive));
        assert!(matches!(lineup[5], Method::Oasis { strata: 120, .. }));
        let balanced = Method::figure2_lineup_balanced();
        assert!(matches!(balanced[3], Method::Oasis { strata: 10, .. }));
    }

    #[test]
    fn every_method_builds_and_steps() {
        let (pool, truth) = tiny_pool();
        let mut rng = StdRng::seed_from_u64(1);
        for method in Method::figure2_lineup() {
            // Cap strata at the pool size implicitly via the stratifiers.
            let mut sampler = method.build(&pool, 0.5, 0.5).unwrap();
            let mut oracle = GroundTruthOracle::new(truth.clone());
            for _ in 0..20 {
                let outcome = sampler.step(&pool, &mut oracle, &mut rng).unwrap();
                assert!(outcome.item < pool.len());
            }
            let estimate = sampler.estimate();
            assert_eq!(estimate.alpha, 0.5);
        }
    }

    #[test]
    fn as_oasis_only_matches_oasis() {
        let (pool, _) = tiny_pool();
        let oasis = Method::oasis(4).build(&pool, 0.5, 0.5).unwrap();
        assert!(oasis.as_oasis().is_some());
        let passive = Method::Passive.build(&pool, 0.5, 0.5).unwrap();
        assert!(passive.as_oasis().is_none());
    }
}
